//! The pass manager: every stage of the Tapeflow compilation flow —
//! `ir::opt` cleanups, the AD transform and core Passes 1–4 — as a
//! registered [`Pass`] running over a shared [`PipelineState`], assembled
//! by a [`PipelineBuilder`] and reported on by a [`PipelineReport`].
//!
//! This is the architecture the paper's toolflow implies (Enzyme sits
//! inside LLVM's pass pipeline; Tapeflow's four passes follow it): each
//! stage is a named pass with explicit prerequisites, the IR is verified
//! after every pass in checked mode, and per-pass wall time,
//! [`CompileStats`] and optional post-pass IR snapshots are recorded —
//! the in-tree analogue of `opt`'s `--time-passes` / `--print-after-all`.
//!
//! Registered passes, in canonical order:
//!
//! | name | stage |
//! |---|---|
//! | `opt` | const-fold / CSE / DCE (the paper's `-O3` assumption) |
//! | `ad` | reverse-mode AD: FWD + tape + REV gradient function |
//! | `regions` | Pass 1 (§3.3): merge SoA tape arrays into AoS regions |
//! | `layering` | Pass 2 (§3.4/§3.7): scratchpad-sized layers |
//! | `streams` | Pass 3 (§3.5): `FWD-Stream`/`REV-Stream` at layer bounds |
//! | `spad-index` | Pass 4 (§3.6): tape accesses → scratchpad indices |
//! | `aos-layout` | terminal AoS lowering ([`CompileMode::AosOnly`]) |
//!
//! Passes 3 and 4 share one rewriter walk ([`crate::apply`]); `streams`
//! therefore only materializes its own output function when IR capture is
//! on (a verified, runnable intermediate whose tape loads still read the
//! merged DRAM regions), and otherwise records that the stream insertion
//! is fused into the `spad-index` rewrite — which is also where the fused
//! wall time lands.
//!
//! [`crate::compile`] is a thin wrapper over the builder, so the standard
//! entry point and the pass manager can never drift apart.
//!
//! ```rust
//! use tapeflow_ir::{ArrayKind, FunctionBuilder, Scalar};
//! use tapeflow_autodiff::AdOptions;
//! use tapeflow_core::pipeline::PipelineBuilder;
//! use tapeflow_core::CompileOptions;
//!
//! let mut b = FunctionBuilder::new("pipe");
//! let x = b.array("x", 64, ArrayKind::Input, Scalar::F64);
//! let loss = b.array("loss", 1, ArrayKind::Output, Scalar::F64);
//! b.for_loop("i", 0, 64, |b, i| {
//!     let v = b.load(x, i);
//!     let e = b.exp(v);
//!     let c = b.load_cell(loss);
//!     let s = b.fadd(c, e);
//!     b.store_cell(loss, s);
//! });
//! let f = b.finish();
//! let run = PipelineBuilder::full(CompileOptions::default(), AdOptions::new(vec![x], vec![loss]))
//!     .with_verify(true)
//!     .run_source(&f)
//!     .unwrap();
//! assert_eq!(run.report.pass_names(), ["opt", "ad", "regions", "layering", "streams", "spad-index"]);
//! let compiled = run.into_compiled().unwrap();
//! assert!(compiled.stats.fwd_layers > 0);
//! ```

use crate::apply::{apply_lowered, Lowering};
use crate::layering::{self, LayerPlan, RegionLayout};
use crate::regions::{self, FormedRegions};
use crate::{CompileMode, CompileOptions, CompileStats, CompiledProgram, CoreError};
use std::fmt;
use std::time::{Duration, Instant};
use tapeflow_autodiff::{differentiate, AdOptions, Gradient};
use tapeflow_ir::lint::{self, Diagnostic, LintConfig};
use tapeflow_ir::{opt::OptStats, pretty, verify, ArrayKind, Function};

/// The evolving program plus the sidecar artifacts passes read and
/// write. Transform passes replace [`PipelineState::current_ir`]'s view;
/// analysis passes (Passes 1 and 2) only attach artifacts.
#[derive(Debug, Default)]
pub struct PipelineState {
    /// The source function (set by [`PipelineBuilder::run_source`],
    /// replaced by the `opt` pass's output).
    pub func: Option<Function>,
    /// The AD front-end's output (set by the `ad` pass, or seeded by
    /// [`PipelineBuilder::run_gradient`]).
    pub gradient: Option<Gradient>,
    /// Pass 1 artifact: formed regions.
    pub formed: Option<FormedRegions>,
    /// Pass 2 artifact: the layer plan.
    pub plan: Option<LayerPlan>,
    /// The post-Pass-3 IR snapshot (layers + streams, tape loads still
    /// DRAM-resident). Only materialized when IR capture is on.
    pub streams_ir: Option<Function>,
    /// Terminal lowering output (`spad-index` or `aos-layout`).
    pub compiled: Option<CompiledProgram>,
    /// `opt` pass statistics.
    pub opt_stats: Option<OptStats>,
    /// Whether post-pass IR snapshots are being captured (set from
    /// [`PipelineBuilder::with_ir_capture`]; the `streams` pass reads it).
    pub capture_ir: bool,
    /// One-line detail the running pass leaves for the report (cleared
    /// before each pass).
    pub detail: String,
}

impl PipelineState {
    /// The most-lowered function currently in the state: the compiled
    /// program if a terminal pass ran, else the streams snapshot, else
    /// the gradient function, else the (possibly optimized) source.
    pub fn current_ir(&self) -> Option<&Function> {
        if let Some(c) = &self.compiled {
            return Some(&c.func);
        }
        if let Some(f) = &self.streams_ir {
            return Some(f);
        }
        if let Some(g) = &self.gradient {
            return Some(&g.func);
        }
        self.func.as_ref()
    }

    /// Compile statistics as far as the artifacts determine them: full
    /// [`CompileStats`] once a terminal pass ran, partial counts from the
    /// formed regions / layer plan before that.
    pub fn stats(&self) -> CompileStats {
        if let Some(c) = &self.compiled {
            return c.stats;
        }
        let mut s = CompileStats::default();
        if let Some(f) = &self.formed {
            s.regions = f.regions.len();
        }
        if let Some(p) = &self.plan {
            s.regions = p.regions.len();
            s.fwd_layers = p.total_fwd_layers;
            s.duplicated_slots = p
                .regions
                .iter()
                .map(|r| match &r.layout {
                    RegionLayout::Segmented { segments } => {
                        segments.iter().map(|seg| seg.dups.len()).sum()
                    }
                    _ => 0,
                })
                .sum();
            s.merged_tape_bytes = p.regions.iter().map(|r| r.merged_len() as u64 * 8).sum();
        }
        s
    }
}

/// One registered stage of the compilation flow.
pub trait Pass {
    /// Registry name (`opt`, `ad`, `regions`, `layering`, `streams`,
    /// `spad-index`, `aos-layout`).
    fn name(&self) -> &'static str;
    /// One-line description for reports and `--passes help`.
    fn description(&self) -> &'static str;
    /// Runs the pass over the evolving state.
    ///
    /// # Errors
    ///
    /// Any [`CoreError`]; missing prerequisites surface as
    /// [`CoreError::Pipeline`].
    fn run(&self, state: &mut PipelineState) -> Result<(), CoreError>;
}

fn missing(pass: &str, what: &str) -> CoreError {
    CoreError::Pipeline(format!("pass `{pass}` needs {what} in the pipeline state"))
}

// ---- the registered passes -------------------------------------------------

struct OptPass;

impl Pass for OptPass {
    fn name(&self) -> &'static str {
        "opt"
    }
    fn description(&self) -> &'static str {
        "const-fold / CSE / DCE cleanups (the paper's -O3 assumption)"
    }
    fn run(&self, state: &mut PipelineState) -> Result<(), CoreError> {
        if state.gradient.is_some() {
            return Err(CoreError::Pipeline(
                "pass `opt` must run before `ad`: a rewrite would invalidate the AD maps".into(),
            ));
        }
        let func = state
            .func
            .take()
            .ok_or_else(|| missing("opt", "a source function (run_source)"))?;
        let (g, stats) = tapeflow_ir::opt::optimize(&func);
        state.detail = format!(
            "folded {}, cse {}, dce {}",
            stats.folded, stats.cse_hits, stats.dce_removed
        );
        state.func = Some(g);
        state.opt_stats = Some(stats);
        Ok(())
    }
}

struct AdPass {
    opts: AdOptions,
}

impl Pass for AdPass {
    fn name(&self) -> &'static str {
        "ad"
    }
    fn description(&self) -> &'static str {
        "reverse-mode AD: FWD + tape + REV gradient function"
    }
    fn run(&self, state: &mut PipelineState) -> Result<(), CoreError> {
        if state.gradient.is_some() {
            return Err(CoreError::Pipeline(
                "pass `ad` ran on a state that already has a gradient".into(),
            ));
        }
        let func = state
            .func
            .as_ref()
            .ok_or_else(|| missing("ad", "a source function (run_source)"))?;
        let grad = differentiate(func, &self.opts)?;
        state.detail = format!(
            "taped {} values ({} B), recomputed {}, adjoint cells {}",
            grad.stats.taped_values,
            grad.stats.tape_bytes,
            grad.stats.recomputed_values,
            grad.stats.adjoint_cells
        );
        state.gradient = Some(grad);
        Ok(())
    }
}

struct RegionsPass;

impl Pass for RegionsPass {
    fn name(&self) -> &'static str {
        "regions"
    }
    fn description(&self) -> &'static str {
        "Pass 1 (3.3): merge SoA tape arrays into AoS regions"
    }
    fn run(&self, state: &mut PipelineState) -> Result<(), CoreError> {
        let grad = state
            .gradient
            .as_ref()
            .ok_or_else(|| missing("regions", "a gradient (`ad` or run_gradient)"))?;
        let formed = regions::form_regions(grad);
        state.detail = format!(
            "{} regions, {} unmanaged tapes, {} nesting levels",
            formed.regions.len(),
            formed.unmanaged.len(),
            formed.levels
        );
        state.formed = Some(formed);
        Ok(())
    }
}

struct LayeringPass {
    opts: CompileOptions,
}

impl Pass for LayeringPass {
    fn name(&self) -> &'static str {
        "layering"
    }
    fn description(&self) -> &'static str {
        "Pass 2 (3.4/3.7): schedule FWD/REV into scratchpad-sized layers"
    }
    fn run(&self, state: &mut PipelineState) -> Result<(), CoreError> {
        let grad = state
            .gradient
            .as_ref()
            .ok_or_else(|| missing("layering", "a gradient"))?;
        let formed = state
            .formed
            .clone()
            .ok_or_else(|| missing("layering", "formed regions (`regions`)"))?;
        let plan = layering::plan_layers(grad, formed, &self.opts)?;
        let segmented = plan
            .regions
            .iter()
            .filter(|r| matches!(r.layout, RegionLayout::Segmented { .. }))
            .count();
        state.detail = format!(
            "{} fwd layers, {} segmented regions, {} duplicated slots",
            plan.total_fwd_layers,
            segmented,
            plan.regions
                .iter()
                .map(|r| match &r.layout {
                    RegionLayout::Segmented { segments } =>
                        segments.iter().map(|s| s.dups.len()).sum(),
                    _ => 0,
                })
                .sum::<usize>()
        );
        state.plan = Some(plan);
        Ok(())
    }
}

struct StreamsPass {
    opts: CompileOptions,
}

impl Pass for StreamsPass {
    fn name(&self) -> &'static str {
        "streams"
    }
    fn description(&self) -> &'static str {
        "Pass 3 (3.5): FWD-Stream/REV-Stream commands at layer boundaries"
    }
    fn run(&self, state: &mut PipelineState) -> Result<(), CoreError> {
        let grad = state
            .gradient
            .as_ref()
            .ok_or_else(|| missing("streams", "a gradient"))?;
        let plan = state
            .plan
            .as_ref()
            .ok_or_else(|| missing("streams", "a layer plan (`layering`)"))?;
        if state.capture_ir {
            // Materialize the post-Pass-3 intermediate: restructured
            // layers, barriers and stream commands, with tape loads still
            // reading the merged DRAM regions. It verifies and computes
            // the same gradients as the final program.
            let snap = apply_lowered(grad, plan.clone(), self.opts, Lowering::Streams)?;
            state.streams_ir = Some(snap.func);
            state.detail = "materialized stream snapshot (tape loads still DRAM-resident)".into();
        } else {
            state.detail = "stream insertion fused into the spad-index rewrite".into();
        }
        Ok(())
    }
}

struct SpadIndexPass {
    opts: CompileOptions,
}

impl Pass for SpadIndexPass {
    fn name(&self) -> &'static str {
        "spad-index"
    }
    fn description(&self) -> &'static str {
        "Pass 4 (3.6): rewrite tape accesses into scratchpad indices"
    }
    fn run(&self, state: &mut PipelineState) -> Result<(), CoreError> {
        let grad = state
            .gradient
            .as_ref()
            .ok_or_else(|| missing("spad-index", "a gradient"))?;
        let plan = state
            .plan
            .clone()
            .ok_or_else(|| missing("spad-index", "a layer plan (`layering`)"))?;
        let compiled = apply_lowered(grad, plan, self.opts, Lowering::Spad)?;
        state.detail = format!(
            "{} merged tape bytes, {} spad entries",
            compiled.stats.merged_tape_bytes, compiled.stats.spad_entries
        );
        state.compiled = Some(compiled);
        Ok(())
    }
}

struct AosLayoutPass {
    opts: CompileOptions,
}

impl Pass for AosLayoutPass {
    fn name(&self) -> &'static str {
        "aos-layout"
    }
    fn description(&self) -> &'static str {
        "terminal AoS lowering: merged regions stay cache-resident (Fig 4.3)"
    }
    fn run(&self, state: &mut PipelineState) -> Result<(), CoreError> {
        let grad = state
            .gradient
            .as_ref()
            .ok_or_else(|| missing("aos-layout", "a gradient"))?;
        let formed = state
            .formed
            .clone()
            .ok_or_else(|| missing("aos-layout", "formed regions (`regions`)"))?;
        let opts = CompileOptions {
            mode: CompileMode::AosOnly,
            ..self.opts
        };
        let plan = layering::plan_layers(grad, formed, &opts)?;
        state.plan = Some(plan.clone());
        let compiled = apply_lowered(grad, plan, opts, Lowering::Aos)?;
        state.detail = format!("{} merged tape bytes", compiled.stats.merged_tape_bytes);
        state.compiled = Some(compiled);
        Ok(())
    }
}

// ---- builder ---------------------------------------------------------------

/// Registered pass names with one-line descriptions, in canonical order.
pub fn registered_passes() -> [(&'static str, &'static str); 7] {
    [
        ("opt", OptPass.description()),
        (
            "ad",
            AdPass {
                opts: AdOptions::new(vec![], vec![]),
            }
            .description(),
        ),
        ("regions", RegionsPass.description()),
        (
            "layering",
            LayeringPass {
                opts: CompileOptions::default(),
            }
            .description(),
        ),
        (
            "streams",
            StreamsPass {
                opts: CompileOptions::default(),
            }
            .description(),
        ),
        (
            "spad-index",
            SpadIndexPass {
                opts: CompileOptions::default(),
            }
            .description(),
        ),
        (
            "aos-layout",
            AosLayoutPass {
                opts: CompileOptions::default(),
            }
            .description(),
        ),
    ]
}

/// Assembles and runs pass pipelines.
///
/// The standard shapes are [`PipelineBuilder::full`] (the paper's whole
/// toolflow), [`PipelineBuilder::aos_only`] (Fig 4.3's Pass-1-only
/// configuration), [`PipelineBuilder::enzyme_baseline`] (opt + AD, no
/// Tapeflow passes) and [`PipelineBuilder::for_options`] (the
/// gradient-seeded suffix [`crate::compile`] runs). Custom orders come
/// from [`PipelineBuilder::from_names`].
pub struct PipelineBuilder {
    passes: Vec<Box<dyn Pass + Send + Sync>>,
    verify: bool,
    capture_ir: bool,
    lint: Option<LintConfig>,
}

impl fmt::Debug for PipelineBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PipelineBuilder")
            .field("passes", &self.pass_names())
            .field("verify", &self.verify)
            .field("capture_ir", &self.capture_ir)
            .field("lint", &self.lint)
            .finish()
    }
}

impl PipelineBuilder {
    /// An empty pipeline; add passes via [`PipelineBuilder::push`]. IR
    /// verification after every pass defaults to on in debug builds.
    pub fn empty() -> Self {
        PipelineBuilder {
            passes: Vec::new(),
            verify: cfg!(debug_assertions),
            capture_ir: false,
            lint: None,
        }
    }

    /// Appends a pass (builder style).
    #[must_use]
    pub fn push(mut self, pass: Box<dyn Pass + Send + Sync>) -> Self {
        self.passes.push(pass);
        self
    }

    /// The standard gradient-seeded pipeline for `options.mode`:
    /// `regions → layering → streams → spad-index` for
    /// [`CompileMode::Full`], `regions → aos-layout` for
    /// [`CompileMode::AosOnly`]. This is what [`crate::compile`] runs.
    pub fn for_options(options: &CompileOptions) -> Self {
        let opts = *options;
        let b = Self::empty().push(Box::new(RegionsPass));
        match opts.mode {
            CompileMode::Full => b
                .push(Box::new(LayeringPass { opts }))
                .push(Box::new(StreamsPass { opts }))
                .push(Box::new(SpadIndexPass { opts })),
            CompileMode::AosOnly => b.push(Box::new(AosLayoutPass { opts })),
        }
    }

    /// The whole toolflow from source: `opt → ad → regions → layering →
    /// streams → spad-index`.
    pub fn full(options: CompileOptions, ad: AdOptions) -> Self {
        let opts = CompileOptions {
            mode: CompileMode::Full,
            ..options
        };
        Self::empty()
            .push(Box::new(OptPass))
            .push(Box::new(AdPass { opts: ad }))
            .push(Box::new(RegionsPass))
            .push(Box::new(LayeringPass { opts }))
            .push(Box::new(StreamsPass { opts }))
            .push(Box::new(SpadIndexPass { opts }))
    }

    /// The Pass-1-only toolflow from source: `opt → ad → regions →
    /// aos-layout` (Fig 4.3's configuration).
    pub fn aos_only(options: CompileOptions, ad: AdOptions) -> Self {
        Self::empty()
            .push(Box::new(OptPass))
            .push(Box::new(AdPass { opts: ad }))
            .push(Box::new(RegionsPass))
            .push(Box::new(AosLayoutPass { opts: options }))
    }

    /// The Enzyme baseline from source: `opt → ad` — the gradient
    /// function with a cache-orchestrated tape, no Tapeflow passes.
    pub fn enzyme_baseline(ad: AdOptions) -> Self {
        Self::empty()
            .push(Box::new(OptPass))
            .push(Box::new(AdPass { opts: ad }))
    }

    /// Assembles a pipeline from registered pass names (the CLI's
    /// `--passes a,b,c`). `ad_opts` is required iff the list contains
    /// `ad`.
    ///
    /// # Errors
    ///
    /// [`CoreError::Pipeline`] on an unknown or duplicate name, a
    /// missing prerequisite (e.g. `layering` without `regions` before
    /// it, `spad-index` without `streams` — the two share one rewriter
    /// walk), or `aos-layout` combined with the streaming passes.
    pub fn from_names(
        names: &[&str],
        options: CompileOptions,
        ad_opts: Option<AdOptions>,
    ) -> Result<Self, CoreError> {
        let known: Vec<&str> = registered_passes().iter().map(|(n, _)| *n).collect();
        for n in names {
            if !known.contains(n) {
                return Err(CoreError::Pipeline(format!(
                    "unknown pass {n:?} (registered: {})",
                    known.join(", ")
                )));
            }
        }
        let pos = |n: &str| names.iter().position(|x| *x == n);
        for n in &known {
            if names.iter().filter(|x| *x == n).count() > 1 {
                return Err(CoreError::Pipeline(format!("pass `{n}` listed twice")));
            }
        }
        let requires = [
            ("layering", "regions"),
            ("streams", "layering"),
            ("spad-index", "streams"),
            ("aos-layout", "regions"),
        ];
        for (pass, prereq) in requires {
            if let Some(p) = pos(pass) {
                match pos(prereq) {
                    Some(q) if q < p => {}
                    _ => {
                        return Err(CoreError::Pipeline(format!(
                            "pass `{pass}` requires `{prereq}` before it"
                        )))
                    }
                }
            }
        }
        if let (Some(o), Some(a)) = (pos("opt"), pos("ad")) {
            if o > a {
                return Err(CoreError::Pipeline(
                    "pass `opt` must come before `ad` (a rewrite would invalidate the AD maps)"
                        .into(),
                ));
            }
        }
        if pos("aos-layout").is_some() {
            for conflict in ["layering", "streams", "spad-index"] {
                if pos(conflict).is_some() {
                    return Err(CoreError::Pipeline(format!(
                        "pass `aos-layout` conflicts with `{conflict}`: pick one terminal lowering"
                    )));
                }
            }
        }
        if pos("ad").is_some() && ad_opts.is_none() {
            return Err(CoreError::Pipeline(
                "pass list contains `ad` but no AD options (wrt/loss) were supplied".into(),
            ));
        }
        let mut b = Self::empty();
        for n in names {
            b = b.push(match *n {
                "opt" => Box::new(OptPass),
                "ad" => Box::new(AdPass {
                    opts: ad_opts.clone().expect("checked above"),
                }),
                "regions" => Box::new(RegionsPass),
                "layering" => Box::new(LayeringPass { opts: options }),
                "streams" => Box::new(StreamsPass { opts: options }),
                "spad-index" => Box::new(SpadIndexPass { opts: options }),
                "aos-layout" => Box::new(AosLayoutPass { opts: options }),
                _ => unreachable!("validated against the registry"),
            });
        }
        Ok(b)
    }

    /// Turns post-pass IR verification on or off (default: on in debug
    /// builds, off in release).
    #[must_use]
    pub fn with_verify(mut self, on: bool) -> Self {
        self.verify = on;
        self
    }

    /// Turns post-pass IR snapshot capture on or off (the CLI's
    /// `--print-after-all`). Capture also materializes the `streams`
    /// pass's intermediate function.
    #[must_use]
    pub fn with_ir_capture(mut self, on: bool) -> Self {
        self.capture_ir = on;
        self
    }

    /// Turns post-pass static-analysis linting on (`Some(config)`) or off
    /// (`None`; the default) — the CLI's `--lint-after-all`, mirroring
    /// `--print-after-all`. The lints only *record* findings into each
    /// [`PassRecord`]; they never abort the pipeline or perturb the
    /// compiled output.
    #[must_use]
    pub fn with_lint(mut self, cfg: Option<LintConfig>) -> Self {
        self.lint = cfg;
        self
    }

    /// Names of the assembled passes, in run order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Runs the pipeline from a source function (clones it into the
    /// state).
    ///
    /// # Errors
    ///
    /// The first failing pass's [`CoreError`], or
    /// [`CoreError::PassVerify`] when a post-pass verification fails.
    pub fn run_source(&self, func: &Function) -> Result<PipelineRun, CoreError> {
        let state = PipelineState {
            func: Some(func.clone()),
            ..PipelineState::default()
        };
        self.execute(state)
    }

    /// Runs the pipeline seeded with an existing gradient (what
    /// [`crate::compile`] does); the pass list must not contain `opt` or
    /// `ad`.
    ///
    /// # Errors
    ///
    /// See [`PipelineBuilder::run_source`].
    pub fn run_gradient(&self, grad: &Gradient) -> Result<PipelineRun, CoreError> {
        let state = PipelineState {
            gradient: Some(grad.clone()),
            ..PipelineState::default()
        };
        self.execute(state)
    }

    fn execute(&self, mut state: PipelineState) -> Result<PipelineRun, CoreError> {
        state.capture_ir = self.capture_ir;
        let mut records = Vec::with_capacity(self.passes.len());
        let mut ir_before = state.current_ir().map(IrCounts::of).unwrap_or_default();
        for pass in &self.passes {
            state.detail.clear();
            let t0 = Instant::now();
            pass.run(&mut state)?;
            let wall = t0.elapsed();
            let verified = if self.verify {
                match state.current_ir() {
                    Some(f) => {
                        verify::verify(f).map_err(|error| CoreError::PassVerify {
                            pass: pass.name(),
                            error,
                        })?;
                        Some(true)
                    }
                    None => None,
                }
            } else {
                None
            };
            let snapshot = if self.capture_ir {
                state.current_ir().map(|f| pretty::pretty(f).to_string())
            } else {
                None
            };
            let lint = match &self.lint {
                Some(cfg) => state.current_ir().map(|f| lint::lint_function(f, cfg)),
                None => None,
            };
            let ir_after = state.current_ir().map(IrCounts::of).unwrap_or_default();
            records.push(PassRecord {
                name: pass.name(),
                description: pass.description(),
                wall,
                stats: state.stats(),
                ir_insts: ir_after.insts,
                ir_before,
                ir_after,
                verified,
                detail: std::mem::take(&mut state.detail),
                snapshot,
                lint,
            });
            ir_before = ir_after;
        }
        Ok(PipelineRun {
            state,
            report: PipelineReport { records },
        })
    }
}

// ---- reports ---------------------------------------------------------------

/// Coarse size counters of one IR view, captured before and after every
/// pass so reports can attribute growth or shrinkage (values, ops, tape
/// slots added/removed) to the pass that caused it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IrCounts {
    /// Instructions.
    pub insts: usize,
    /// SSA values.
    pub values: usize,
    /// Tape arrays declared.
    pub tape_arrays: usize,
    /// Total tape capacity in 8-byte slots across those arrays.
    pub tape_slots: u64,
}

impl IrCounts {
    /// Counts `func`.
    pub fn of(func: &Function) -> Self {
        IrCounts {
            insts: func.insts().len(),
            values: func.values().len(),
            tape_arrays: func.arrays_of_kind(ArrayKind::Tape).count(),
            tape_slots: func.bytes_of_kind(ArrayKind::Tape) / 8,
        }
    }
}

/// What the manager recorded about one executed pass.
#[derive(Clone, Debug)]
pub struct PassRecord {
    /// Registered pass name.
    pub name: &'static str,
    /// One-line pass description.
    pub description: &'static str,
    /// Wall-clock time of the pass itself (excludes verification and
    /// snapshotting).
    pub wall: Duration,
    /// Compile statistics after the pass (partial until a terminal
    /// lowering runs; see [`PipelineState::stats`]).
    pub stats: CompileStats,
    /// Instruction count of the current IR after the pass.
    pub ir_insts: usize,
    /// IR size counters before the pass ran (all-zero when no IR existed
    /// yet, e.g. ahead of `opt`/`ad` in a source-seeded run).
    pub ir_before: IrCounts,
    /// IR size counters after the pass ran.
    pub ir_after: IrCounts,
    /// `Some(true)` when post-pass verification ran and passed; `None`
    /// when verification was off or no IR existed yet. (A failure aborts
    /// the pipeline with [`CoreError::PassVerify`].)
    pub verified: Option<bool>,
    /// One-line pass-specific detail (counts, sizes).
    pub detail: String,
    /// Pretty-printed IR after the pass (only with IR capture).
    pub snapshot: Option<String>,
    /// Static-analysis findings on the IR after the pass (only with
    /// [`PipelineBuilder::with_lint`]; `None` when linting was off or no
    /// IR existed yet).
    pub lint: Option<Vec<Diagnostic>>,
}

impl PassRecord {
    /// Instructions added (positive) or removed (negative) by the pass.
    pub fn insts_delta(&self) -> i64 {
        self.ir_after.insts as i64 - self.ir_before.insts as i64
    }

    /// SSA values added or removed by the pass.
    pub fn values_delta(&self) -> i64 {
        self.ir_after.values as i64 - self.ir_before.values as i64
    }

    /// Tape slots (8 B each) added or removed by the pass.
    pub fn tape_slots_delta(&self) -> i64 {
        self.ir_after.tape_slots as i64 - self.ir_before.tape_slots as i64
    }
}

/// Per-pass wall time, statistics and snapshots for one pipeline run.
#[derive(Clone, Debug, Default)]
pub struct PipelineReport {
    /// One record per executed pass, in run order.
    pub records: Vec<PassRecord>,
}

impl PipelineReport {
    /// Names of the executed passes, in order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.records.iter().map(|r| r.name).collect()
    }

    /// Total wall time across all passes.
    pub fn total_wall(&self) -> Duration {
        self.records.iter().map(|r| r.wall).sum()
    }

    /// An LLVM-`--time-passes`-style text table: per-pass wall time,
    /// instruction count, verification status and detail.
    pub fn render_timings(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "// === pass timing (wall clock) ===");
        let total = self.total_wall().as_secs_f64().max(1e-12);
        for r in &self.records {
            let ms = r.wall.as_secs_f64() * 1e3;
            let share = r.wall.as_secs_f64() / total * 100.0;
            let _ = writeln!(
                out,
                "//   {:<11} {:>9.3} ms ({:>5.1}%)  {:>6} insts  {}  {}",
                r.name,
                ms,
                share,
                r.ir_insts,
                match r.verified {
                    Some(true) => "verified",
                    _ => "        ",
                },
                r.detail
            );
        }
        let _ = writeln!(
            out,
            "//   {:<11} {:>9.3} ms",
            "total",
            self.total_wall().as_secs_f64() * 1e3
        );
        out
    }

    /// The captured IR snapshots with `--print-after-all`-style banners.
    /// Empty when the run captured no IR.
    pub fn render_snapshots(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        let n = self.records.len();
        for (i, r) in self.records.iter().enumerate() {
            let Some(ir) = &r.snapshot else { continue };
            let _ = writeln!(
                out,
                "// ===== IR after pass {}/{}: {} ({}) =====",
                i + 1,
                n,
                r.name,
                r.description
            );
            out.push_str(ir);
        }
        out
    }

    /// The per-pass lint findings with `--lint-after-all`-style banners.
    /// Every linted pass gets a banner (like `--print-after-all` prints
    /// every pass's IR); tables follow only where there are findings.
    /// Empty when the run linted nothing.
    pub fn render_lint(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        let n = self.records.len();
        for (i, r) in self.records.iter().enumerate() {
            let Some(diags) = &r.lint else { continue };
            let (errors, warnings) = lint::counts(diags);
            let _ = writeln!(
                out,
                "// ===== lint after pass {}/{}: {} ({} error(s), {} warning(s)) =====",
                i + 1,
                n,
                r.name,
                errors,
                warnings
            );
            out.push_str(&lint::render_table(diags));
        }
        out
    }
}

/// A completed pipeline execution: the final state plus the report.
#[derive(Debug)]
pub struct PipelineRun {
    /// Final pipeline state with every artifact the passes produced.
    pub state: PipelineState,
    /// Per-pass records.
    pub report: PipelineReport,
}

impl PipelineRun {
    /// The compiled program, consuming the run.
    ///
    /// # Errors
    ///
    /// [`CoreError::Pipeline`] when the pipeline had no terminal lowering
    /// pass (`spad-index` or `aos-layout`).
    pub fn into_compiled(self) -> Result<CompiledProgram, CoreError> {
        self.state.compiled.ok_or_else(|| {
            CoreError::Pipeline(
                "pipeline has no terminal lowering pass (`spad-index` or `aos-layout`)".into(),
            )
        })
    }
}
