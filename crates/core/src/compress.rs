//! Pass 5: tape compression — shrinking the modeled tape DRAM traffic
//! without changing a single gradient bit.
//!
//! Runs between `layering` and `streams`, consuming the layer plan and
//! producing a [`TapeEncoding`] plus a rewritten plan. Two mechanisms:
//!
//! * **Input rematerialization** ([`SlotEncoding::Remat`]): a tape slot
//!   whose stored value is a load from a *read-only input array* at an
//!   index affine in the enclosing loop induction variables does not need
//!   to round-trip through DRAM at all — the REV phase can reload the
//!   input directly. The slot is dropped from its region struct (the
//!   struct shrinks, so every `FWD-Stream`/`REV-Stream` moves fewer
//!   bytes) and each REV tape load is replaced by an input load whose
//!   index is rebuilt from the REV ordinals. Because the input array is
//!   never written, the reload returns the exact bits the store would
//!   have taped.
//! * **Width narrowing** ([`SlotEncoding::Keep`] with `width < 8`): a
//!   tape slot whose stored value is provably a small integer is recorded
//!   at 1/2/4 bytes. Two proofs qualify: an `itof`-converted integer
//!   whose `i64` range fits after biasing by its lower bound, and — the
//!   payoff of declared input ranges — a *quantized* `f64` (the
//!   value-range analysis proved every value is an exact integer in a
//!   small interval, e.g. a cost grid annotated `in[0,9]` surviving
//!   `fmin`/`fadd` chains). The region's stream commands become
//!   `stream.outc`/`stream.inc` with a packed per-struct byte count, so
//!   the traffic model charges the narrow wire format while the program
//!   still moves full values (a transparent codec, like DRAM bus
//!   compression) — gradients stay byte-identical by construction.
//!
//! Segmented (§3.7) regions are left untouched: their slot offsets are
//! baked into per-segment duplication decisions, and re-cutting segments
//! for a smaller struct is a layering concern, not a compression one.
//!
//! The ranges come from the `value-ranges` pipeline artifact
//! ([`tapeflow_ir::vra::value_ranges`]); the `unsound-narrow` plan lint
//! independently re-proves every chosen width, so this pass is not its
//! own checker.

use crate::layering::{LayerPlan, RegionLayout, Site};
use std::collections::{HashMap, HashSet};
use tapeflow_autodiff::Gradient;
use tapeflow_ir::vra::{FloatRange, ValueRanges};
use tapeflow_ir::{ArrayId, ArrayKind, Function, InstId, LoopId, Op, Stmt, ValueDef, ValueId};

/// How a REV load of an elided slot rebuilds its value: load
/// `array[konst + sum(coeff * ordinal(rev_loop))]`, where each ordinal is
/// the REV loop's induction value (REV loops iterate FWD ordinals).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RematRecipe {
    /// The read-only input array to reload from.
    pub array: ArrayId,
    /// Constant term of the rebuilt index.
    pub konst: i64,
    /// Per-REV-loop linear terms `(rev_loop, coefficient)`.
    pub terms: Vec<(LoopId, i64)>,
}

/// Per-tape-slot encoding decision.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SlotEncoding {
    /// The slot stays in its region struct, `width` bytes on the wire
    /// (8 = uncompressed f64; 1/2/4 = narrowed integer).
    Keep {
        /// Modeled bytes per element on the stream wire.
        width: u8,
    },
    /// The slot is elided; REV loads rematerialize from an input array.
    Remat(RematRecipe),
}

/// Pass 5 artifact: one encoding per tape slot plus per-region stream
/// codecs, with before/after traffic accounting.
#[derive(Clone, Debug)]
pub struct TapeEncoding {
    /// Encoding per entry of [`Gradient::tapes`].
    pub slots: Vec<SlotEncoding>,
    /// Per-region `(struct_elems, struct_bytes)` for `stream.outc` /
    /// `stream.inc`; `None` keeps the plain 8-byte-per-element streams.
    pub region_codec: Vec<Option<(u16, u16)>>,
    /// Slots removed from their region structs.
    pub elided_slots: usize,
    /// Slots kept at a width below 8 bytes.
    pub narrowed_slots: usize,
    /// Modeled merged-tape DRAM bytes before compression.
    pub bytes_before: u64,
    /// Modeled merged-tape DRAM bytes after compression.
    pub bytes_after: u64,
}

impl TapeEncoding {
    /// FWD store instructions of elided slots (the rewriter drops them).
    pub fn elided_stores(&self, grad: &Gradient) -> HashSet<InstId> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, SlotEncoding::Remat(_)))
            .map(|(k, _)| grad.tapes[k].store)
            .collect()
    }

    /// REV load instruction → remat recipe for every elided slot.
    pub fn remat_loads(&self, grad: &Gradient) -> HashMap<InstId, RematRecipe> {
        let mut m = HashMap::new();
        for (k, s) in self.slots.iter().enumerate() {
            if let SlotEncoding::Remat(r) = s {
                for &l in &grad.tapes[k].loads {
                    m.insert(l, r.clone());
                }
            }
        }
        m
    }
}

/// Width in bytes needed for integers in `[lo, hi]` after biasing by `lo`.
pub(crate) fn width_for(lo: i64, hi: i64) -> u8 {
    let span = hi.saturating_sub(lo);
    if span < 1 << 8 {
        1
    } else if span < 1 << 16 {
        2
    } else if span < 1 << 32 {
        4
    } else {
        8
    }
}

/// Wire width for a quantized float range: every value is an exact
/// integer in `[lo, hi]`, so bias encoding by `floor(lo)` is lossless.
/// `None` when the range is not quantized or its bounds leave the
/// exact-integer territory of `f64`.
pub(crate) fn quantized_width(r: &FloatRange) -> Option<u8> {
    const EXACT: f64 = 9_007_199_254_740_992.0; // 2^53
    if !r.quantized || r.lo.abs() >= EXACT || r.hi.abs() >= EXACT {
        return None;
    }
    Some(width_for(r.lo.floor() as i64, r.hi.ceil() as i64))
}

/// `konst + sum(coeff * iv)` form of an integer value, or `None` when the
/// value is not affine in loop induction variables.
fn affine_of(func: &Function, v: ValueId, acc_depth: usize) -> Option<(i64, HashMap<LoopId, i64>)> {
    if acc_depth > 64 {
        return None;
    }
    match func.value(v).def {
        ValueDef::Const(tapeflow_ir::Const::I64(c)) => Some((c, HashMap::new())),
        ValueDef::Const(_) => None,
        ValueDef::Iv(l) => {
            let mut t = HashMap::new();
            t.insert(l, 1i64);
            Some((0, t))
        }
        ValueDef::Inst(i) => {
            let inst = func.inst(i);
            let bin = |sign: i64| -> Option<(i64, HashMap<LoopId, i64>)> {
                let (ka, ta) = affine_of(func, inst.args[0], acc_depth + 1)?;
                let (kb, tb) = affine_of(func, inst.args[1], acc_depth + 1)?;
                let mut t = ta;
                for (l, c) in tb {
                    *t.entry(l).or_insert(0) += sign * c;
                }
                t.retain(|_, c| *c != 0);
                Some((ka + sign * kb, t))
            };
            match inst.op {
                Op::IAdd => bin(1),
                Op::ISub => bin(-1),
                Op::IMul => {
                    let (ka, ta) = affine_of(func, inst.args[0], acc_depth + 1)?;
                    let (kb, tb) = affine_of(func, inst.args[1], acc_depth + 1)?;
                    if tb.is_empty() {
                        let mut t = ta;
                        t.values_mut().for_each(|c| *c *= kb);
                        t.retain(|_, c| *c != 0);
                        Some((ka * kb, t))
                    } else if ta.is_empty() {
                        let mut t = tb;
                        t.values_mut().for_each(|c| *c *= ka);
                        t.retain(|_, c| *c != 0);
                        Some((ka * kb, t))
                    } else {
                        None
                    }
                }
                _ => None,
            }
        }
    }
}

/// Enclosing loop path (outermost first) of every instruction.
fn loop_paths(func: &Function) -> HashMap<InstId, Vec<LoopId>> {
    fn walk(stmts: &[Stmt], stack: &mut Vec<LoopId>, out: &mut HashMap<InstId, Vec<LoopId>>) {
        for s in stmts {
            match s {
                Stmt::Inst(i) => {
                    out.insert(*i, stack.clone());
                }
                Stmt::For { loop_id, body } => {
                    stack.push(*loop_id);
                    walk(body, stack, out);
                    stack.pop();
                }
            }
        }
    }
    let mut out = HashMap::new();
    walk(&func.body, &mut Vec::new(), &mut out);
    out
}

/// Arrays written anywhere in `func` (a remat source must not be one).
fn written_arrays(func: &Function) -> HashSet<ArrayId> {
    func.insts()
        .iter()
        .filter_map(|i| match i.op {
            Op::Store(a) | Op::StreamIn(a) | Op::StreamInC { array: a, .. } => Some(a),
            _ => None,
        })
        .collect()
}

/// Tries to build a remat recipe for tape `t`: stored value must be a
/// load from a never-written input array at an affine index, and every
/// REV load site must sit under the REV mirror of every loop the index
/// depends on.
fn remat_recipe(
    grad: &Gradient,
    t: usize,
    written: &HashSet<ArrayId>,
    paths: &HashMap<InstId, Vec<LoopId>>,
) -> Option<RematRecipe> {
    let info = &grad.tapes[t];
    let store = grad.func.inst(info.store);
    let ValueDef::Inst(src) = grad.func.value(store.args[1]).def else {
        return None;
    };
    let src_inst = grad.func.inst(src);
    let Op::Load(arr) = src_inst.op else {
        return None;
    };
    if grad.func.array(arr).kind != ArrayKind::Input || written.contains(&arr) {
        return None;
    }
    let (konst, terms) = affine_of(&grad.func, src_inst.args[0], 0)?;
    let mut out_konst = konst;
    let mut out_terms = Vec::new();
    for (l, c) in terms {
        let li = grad.func.loop_info(l);
        let start = li.start.as_const()?;
        let rl = *grad.loop_map.get(&l)?;
        // Every load must be able to see this loop's REV ordinal.
        for &load in &info.loads {
            if !paths.get(&load).is_some_and(|p| p.contains(&rl)) {
                return None;
            }
        }
        out_konst += c * start;
        if c * li.step != 0 {
            out_terms.push((rl, c * li.step));
        }
    }
    out_terms.sort_unstable_by_key(|&(l, _)| l.index());
    Some(RematRecipe {
        array: arr,
        konst: out_konst,
        terms: out_terms,
    })
}

/// The narrowest sound wire width for tape slot `t`, from the
/// value-range artifact: the `itof` integer path for `as_int` slots,
/// the quantized-float path for everything else.
fn slot_width(grad: &Gradient, t: usize, ranges: &ValueRanges) -> u8 {
    let store = grad.func.inst(grad.tapes[t].store);
    let stored = store.args[1];
    if grad.tapes[t].as_int {
        // The taped value is `itof(v)`; narrow by v's integer range.
        if let ValueDef::Inst(ci) = grad.func.value(stored).def {
            let conv = grad.func.inst(ci);
            if conv.op == Op::IToF {
                if let Some(r) = ranges.ints.get(conv.args[0].index()).copied().flatten() {
                    return width_for(r.lo, r.hi);
                }
            }
        }
    }
    if let Some(r) = ranges.floats.get(stored.index()).copied().flatten() {
        if let Some(w) = quantized_width(&r) {
            return w;
        }
    }
    8
}

/// Compresses the tape layout: rewrites `plan` (dropping elided slots and
/// compacting struct offsets) and returns it with the [`TapeEncoding`].
///
/// `ranges` is the `value-ranges` pipeline artifact computed over
/// `grad.func` — the sole source of narrowing decisions.
pub fn compress_tapes(
    grad: &Gradient,
    mut plan: LayerPlan,
    ranges: &ValueRanges,
) -> (LayerPlan, TapeEncoding) {
    let bytes_before: u64 = plan.regions.iter().map(|r| r.merged_len() as u64 * 8).sum();
    let written = written_arrays(&grad.func);
    let paths = loop_paths(&grad.func);
    let mut slots: Vec<SlotEncoding> = vec![SlotEncoding::Keep { width: 8 }; grad.tapes.len()];

    for rp in &plan.regions {
        if matches!(
            rp.layout,
            RegionLayout::Segmented { .. } | RegionLayout::LayoutOnly
        ) {
            continue;
        }
        for &t in &rp.region.tapes {
            if let Some(recipe) = remat_recipe(grad, t, &written, &paths) {
                slots[t] = SlotEncoding::Remat(recipe);
                continue;
            }
            let width = slot_width(grad, t, ranges);
            if width < 8 {
                slots[t] = SlotEncoding::Keep { width };
            }
        }
    }

    // Rewrite the plan: drop elided slots, compact offsets, attach codecs.
    let mut region_codec = vec![None; plan.regions.len()];
    for (ri, rp) in plan.regions.iter_mut().enumerate() {
        if matches!(
            rp.layout,
            RegionLayout::Segmented { .. } | RegionLayout::LayoutOnly
        ) {
            continue;
        }
        let (kept, dropped): (Vec<usize>, Vec<usize>) = rp
            .region
            .tapes
            .iter()
            .partition(|&&t| matches!(slots[t], SlotEncoding::Keep { .. }));
        if !dropped.is_empty() {
            for &t in &dropped {
                plan.store_site.remove(&grad.tapes[t].store);
                for l in &grad.tapes[t].loads {
                    plan.load_site.remove(l);
                }
            }
            if kept.is_empty() {
                // Nothing left to stream: the region degenerates to a
                // layout-only shell with an empty merged array.
                rp.layout = RegionLayout::LayoutOnly;
                rp.fwd_layers = 0;
            } else {
                for (off, &t) in kept.iter().enumerate() {
                    let site = Site {
                        region: ri,
                        tape: t,
                        global_off: off,
                        segment: None,
                        local_off: off,
                    };
                    plan.store_site.insert(grad.tapes[t].store, site);
                    for &l in &grad.tapes[t].loads {
                        plan.load_site.insert(l, site);
                    }
                }
            }
            rp.region.tapes = kept;
            rp.region.rsize = rp.region.tapes.len();
            rp.rsize_total = rp.region.tapes.len();
        }
        if !matches!(rp.layout, RegionLayout::LayoutOnly) {
            let packed: u64 = rp
                .region
                .tapes
                .iter()
                .map(|&t| match slots[t] {
                    SlotEncoding::Keep { width } => u64::from(width),
                    SlotEncoding::Remat(_) => 0,
                })
                .sum();
            if packed < rp.rsize_total as u64 * 8 && rp.rsize_total > 0 {
                region_codec[ri] = Some((rp.rsize_total as u16, packed as u16));
            }
        }
    }
    plan.total_fwd_layers = plan.regions.iter().map(|r| r.fwd_layers).sum();

    let bytes_after: u64 = plan
        .regions
        .iter()
        .enumerate()
        .map(|(ri, r)| match region_codec[ri] {
            Some((_, packed)) => r.region.trip_product * u64::from(packed),
            None => r.merged_len() as u64 * 8,
        })
        .sum();
    let elided_slots = slots
        .iter()
        .filter(|s| matches!(s, SlotEncoding::Remat(_)))
        .count();
    let narrowed_slots = slots
        .iter()
        .filter(|s| matches!(s, SlotEncoding::Keep { width } if *width < 8))
        .count();
    let encoding = TapeEncoding {
        slots,
        region_codec,
        elided_slots,
        narrowed_slots,
        bytes_before,
        bytes_after,
    };
    (plan, encoding)
}
