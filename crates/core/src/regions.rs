//! Pass 1 (analysis half): region formation.
//!
//! Groups the AD front-end's per-value struct-of-arrays tape arrays into
//! **regions** — one per loop nest that stores tape values. A region's
//! slots are ordered by program order of their stores, so values produced
//! together end up adjacent in the array-of-structs layout (paper §3.3).

use std::collections::HashMap;
use tapeflow_autodiff::Gradient;
use tapeflow_ir::LoopId;

/// One tape region: the set of taped values stored by one loop body nest.
#[derive(Clone, Debug)]
pub struct Region {
    /// Enclosing FWD loop nest (gradient-function loop ids), outermost
    /// first. Never empty (top-level tapes stay unmanaged).
    pub path: Vec<LoopId>,
    /// Member tapes (indices into [`Gradient::tapes`]), in slot order
    /// (= program order of their stores).
    pub tapes: Vec<usize>,
    /// Slots per struct before any §3.7 duplication.
    pub rsize: usize,
    /// Product of the nest's trip counts (structs in the region).
    pub trip_product: u64,
    /// Trip count of the innermost loop of the nest.
    pub trip_innermost: u64,
    /// Nesting level within the region tree (0 = outermost).
    pub level: usize,
}

/// Output of [`form_regions`].
#[derive(Clone, Debug)]
pub struct FormedRegions {
    /// The regions, in first-store program order.
    pub regions: Vec<Region>,
    /// Tape indices left unmanaged (stored outside any loop).
    pub unmanaged: Vec<usize>,
    /// Depth of the region tree (max `level + 1`; 0 when no regions).
    pub levels: usize,
}

/// Groups tapes into regions and computes the region nesting tree.
pub fn form_regions(grad: &Gradient) -> FormedRegions {
    let mut by_path: HashMap<&[LoopId], Vec<usize>> = HashMap::new();
    let mut order: Vec<&[LoopId]> = Vec::new();
    let mut unmanaged = Vec::new();
    for (t, info) in grad.tapes.iter().enumerate() {
        if info.fwd_loop_path.is_empty() {
            unmanaged.push(t);
            continue;
        }
        let key = info.fwd_loop_path.as_slice();
        let entry = by_path.entry(key).or_default();
        if entry.is_empty() {
            order.push(key);
        }
        entry.push(t);
    }
    let mut regions: Vec<Region> = order
        .iter()
        .map(|&path| {
            let tapes = by_path[path].clone();
            let trip_product = grad.tapes[tapes[0]].trip_product;
            debug_assert!(tapes
                .iter()
                .all(|&t| grad.tapes[t].trip_product == trip_product));
            let innermost = *path.last().expect("non-empty path");
            let trip_innermost = grad
                .func
                .loop_info(innermost)
                .trip_count()
                .expect("taped loops have static trips");
            Region {
                path: path.to_vec(),
                rsize: tapes.len(),
                tapes,
                trip_product,
                trip_innermost,
                level: 0,
            }
        })
        .collect();
    // Levels: a region's level = number of other regions whose path is a
    // proper prefix of its own (those buffers are live while it runs).
    let paths: Vec<Vec<LoopId>> = regions.iter().map(|r| r.path.clone()).collect();
    for (i, r) in regions.iter_mut().enumerate() {
        r.level = paths
            .iter()
            .enumerate()
            .filter(|(j, p)| *j != i && p.len() < r.path.len() && r.path.starts_with(p))
            .count();
    }
    let levels = regions.iter().map(|r| r.level + 1).max().unwrap_or(0);
    FormedRegions {
        regions,
        unmanaged,
        levels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapeflow_autodiff::{differentiate, AdOptions};
    use tapeflow_ir::{ArrayKind, FunctionBuilder, Scalar};

    /// Two taped values per iteration of the inner loop and one in the
    /// outer body: two regions at different levels.
    fn nested_gradient() -> Gradient {
        let mut b = FunctionBuilder::new("nest");
        let x = b.array("x", 12, ArrayKind::Input, Scalar::F64);
        let loss = b.array("loss", 1, ArrayKind::Output, Scalar::F64);
        b.for_loop("i", 0, 3, |b, i| {
            let acc = b.cell_f64("acc", 0.0);
            let z = b.f64(0.0);
            b.store_cell(acc, z);
            b.for_loop("j", 0, 4, |b, j| {
                let idx = b.idx2(i, 4, j);
                let v = b.load(x, idx);
                let e = b.exp(v);
                let t = b.tanh(e);
                let c = b.load_cell(acc);
                let s = b.fadd(c, t);
                b.store_cell(acc, s);
            });
            let a = b.load_cell(acc);
            let sq = b.exp(a);
            let c = b.load_cell(loss);
            let s = b.fadd(c, sq);
            b.store_cell(loss, s);
        });
        let f = b.finish();
        differentiate(&f, &AdOptions::new(vec![x], vec![loss])).unwrap()
    }

    #[test]
    fn groups_by_loop_nest() {
        let grad = nested_gradient();
        let formed = form_regions(&grad);
        assert_eq!(formed.regions.len(), 2, "inner nest + outer body");
        assert_eq!(formed.levels, 2);
        let outer = formed
            .regions
            .iter()
            .find(|r| r.path.len() == 1)
            .expect("outer region");
        let inner = formed
            .regions
            .iter()
            .find(|r| r.path.len() == 2)
            .expect("inner region");
        assert_eq!(outer.level, 0);
        assert_eq!(inner.level, 1);
        assert_eq!(inner.trip_product, 12);
        assert_eq!(inner.trip_innermost, 4);
        assert_eq!(outer.trip_product, 3);
        // exp and tanh both need their results taped: 2 slots inside.
        assert_eq!(inner.rsize, 2);
        assert!(formed.unmanaged.is_empty());
    }

    #[test]
    fn slot_order_is_store_order() {
        let grad = nested_gradient();
        let formed = form_regions(&grad);
        for r in &formed.regions {
            for w in r.tapes.windows(2) {
                assert!(
                    grad.tapes[w[0]].store < grad.tapes[w[1]].store,
                    "slots follow program order of stores"
                );
            }
        }
    }

    #[test]
    fn top_level_tapes_unmanaged() {
        let mut b = FunctionBuilder::new("top");
        let x = b.array("x", 1, ArrayKind::Input, Scalar::F64);
        let loss = b.array("loss", 1, ArrayKind::Output, Scalar::F64);
        let v = b.load_cell(x);
        let e = b.exp(v);
        let t = b.tanh(e);
        b.store_cell(loss, t);
        let f = b.finish();
        let grad = differentiate(&f, &AdOptions::new(vec![x], vec![loss])).unwrap();
        let formed = form_regions(&grad);
        assert!(formed.regions.is_empty());
        assert_eq!(formed.unmanaged.len(), grad.tapes.len());
        assert_eq!(formed.levels, 0);
    }
}
