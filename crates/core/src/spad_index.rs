//! Pass 4: `spad-index` — rewriting stream-command tape ops into plain
//! scratchpad accesses.
//!
//! A standalone structural rewrite over the `streams` terminal IR
//! (nothing here touches the gradient function or the fused rewriter):
//!
//! * `tape.store @R +off [sidx, val]` becomes `spad.store [sidx, val]` —
//!   the DRAM side of the store is already carried by the layer's
//!   `FWD-Stream` spill;
//! * `tape.load @R xrsize +off [lin, sidx]` becomes `spad.load [sidx]` —
//!   the DRAM element the load named is the one the layer's `REV-Stream`
//!   fill placed at `sidx`, so the linear index operand is simply
//!   dropped (its defining chain stays behind as dead code, exactly as
//!   the address chains always have in the compiled program);
//! * everything else — loops, bounds, constants, stream commands,
//!   barriers — is cloned verbatim.
//!
//! The clone replays the streams program in body order, so value,
//! constant and loop numbering in the output is identical to what the
//! historical fused streams+spad walk produced.

use crate::apply::compile_stats;
use crate::streams::StreamsProgram;
use crate::{CompiledProgram, CoreError};
use std::collections::HashMap;
use tapeflow_ir::{Bound, Const, Function, InstId, Op, Stmt, ValueDef, ValueId};

/// Runs Pass 4, producing the compiled (scratchpad-indexed) program.
///
/// # Errors
///
/// [`CoreError::Internal`] if the rewritten function fails verification;
/// [`CoreError::Pipeline`] if the input lost its phase barrier.
pub fn apply_spad_index(sp: &StreamsProgram) -> Result<CompiledProgram, CoreError> {
    let mut cl = Cloner {
        src: &sp.func,
        g: Function::new(sp.func.name.clone()),
        vmap: vec![None; sp.func.values().len()],
        consts: HashMap::new(),
        src_barrier: sp.phase_barrier,
        phase_barrier: None,
    };
    for a in cl.src.arrays() {
        let id = cl.g.add_array(a.name.clone(), a.len, a.kind, a.elem);
        if let Some(r) = a.range {
            cl.g.set_array_range(id, r);
        }
    }
    let mut body = Vec::new();
    cl.walk(&sp.func.body, &mut body);
    cl.g.body = body;
    tapeflow_ir::verify::verify(&cl.g)?;
    let phase_barrier = cl.phase_barrier.ok_or_else(|| {
        CoreError::Pipeline("spad-index input lost its FWD/REV phase barrier".into())
    })?;
    Ok(CompiledProgram {
        func: cl.g,
        phase_barrier,
        plan: sp.plan.clone(),
        options: sp.options,
        encoding: sp.encoding.clone(),
        stats: compile_stats(&sp.plan, &sp.options),
    })
}

struct Cloner<'a> {
    src: &'a Function,
    g: Function,
    vmap: Vec<Option<ValueId>>,
    consts: HashMap<(bool, u64), ValueId>,
    src_barrier: InstId,
    phase_barrier: Option<InstId>,
}

impl Cloner<'_> {
    fn map_val(&mut self, v: ValueId) -> ValueId {
        let key = match self.src.value(v).def {
            ValueDef::Const(Const::F64(c)) => (true, c.to_bits()),
            ValueDef::Const(Const::I64(c)) => (false, c as u64),
            _ => return self.vmap[v.index()].expect("value mapped before use"),
        };
        if let Some(&id) = self.consts.get(&key) {
            return id;
        }
        let c = match self.src.value(v).def {
            ValueDef::Const(c) => c,
            _ => unreachable!(),
        };
        let id = self.g.add_const(c);
        self.consts.insert(key, id);
        id
    }

    fn map_bound(&mut self, b: Bound) -> Bound {
        match b {
            Bound::Const(c) => Bound::Const(c),
            Bound::Value(v) => Bound::Value(self.map_val(v)),
        }
    }

    fn walk(&mut self, stmts: &[Stmt], out: &mut Vec<Stmt>) {
        for s in stmts {
            match s {
                Stmt::Inst(old) => {
                    let inst = self.src.inst(*old).clone();
                    let (op, args, lowered) = match inst.op {
                        Op::TapeStore { .. } => (
                            Op::SpadStore,
                            vec![self.map_val(inst.args[0]), self.map_val(inst.args[1])],
                            true,
                        ),
                        // The linear-index operand is dropped unmapped:
                        // referencing it here would materialize constants
                        // the output never uses.
                        Op::TapeLoad { .. } => {
                            (Op::SpadLoad, vec![self.map_val(inst.args[1])], true)
                        }
                        op => (
                            op,
                            inst.args.iter().map(|&a| self.map_val(a)).collect(),
                            false,
                        ),
                    };
                    // Every clone inherits its source provenance; the
                    // lowered tape ops additionally record this rewrite.
                    let mut p = self.src.prov(*old);
                    if lowered {
                        p = p.rewritten("spad-index");
                    }
                    self.g.set_prov_ctx(p);
                    let (nid, res) = self.g.add_inst(op, args);
                    out.push(Stmt::Inst(nid));
                    if let (Some(r0), Some(r)) = (inst.result, res) {
                        self.vmap[r0.index()] = Some(r);
                    }
                    if *old == self.src_barrier {
                        self.phase_barrier = Some(nid);
                    }
                }
                Stmt::For { loop_id, body } => {
                    let info = self.src.loop_info(*loop_id).clone();
                    let start = self.map_bound(info.start);
                    let end = self.map_bound(info.end);
                    let (nlid, niv) = self.g.add_loop(info.name.clone(), start, end, info.step);
                    self.vmap[info.iv.index()] = Some(niv);
                    let mut inner = Vec::new();
                    self.walk(body, &mut inner);
                    out.push(Stmt::For {
                        loop_id: nlid,
                        body: inner,
                    });
                }
            }
        }
    }
}
