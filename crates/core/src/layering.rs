//! Pass 2: layering — scheduling execution into scratchpad-sized layers.
//!
//! Two shapes, as in the paper:
//!
//! * **Tiled** (§3.4, Algorithm 2): when one iteration's region struct
//!   fits in a layer, the region's loop is tiled so each tile's tape
//!   footprint exactly fills the scratchpad buffer.
//! * **Segmented** (§3.7): when a single iteration overflows the layer,
//!   the loop *body* is cut at statement boundaries into segments, each a
//!   layer of its own. Tape values consumed (in REV) by a different
//!   segment than the one that stored them get **redundant tape stores**
//!   duplicated into the consumer's segment, keeping every layer's reads
//!   local to its own region tile.
//!
//! The scratchpad is partitioned by region-nesting level so that regions
//! whose buffers are simultaneously live never collide; within a level,
//! double buffering splits the range in two so Pass 3's streams can run
//! ahead of compute.

use crate::regions::{FormedRegions, Region};
use crate::{CompileMode, CompileOptions, CoreError};
use std::collections::{HashMap, HashSet};
use tapeflow_autodiff::Gradient;
use tapeflow_ir::{Function, InstId, LoopId, Stmt};

/// One §3.7 segment: a contiguous range of source statements forming a
/// layer.
#[derive(Clone, Debug)]
pub struct Segment {
    /// Source-statement range `[start, end)` at the region body level.
    pub src_range: (usize, usize),
    /// Tapes whose home store is in this segment (slot order).
    pub own: Vec<usize>,
    /// Tapes duplicated into this segment for local REV consumption.
    pub dups: Vec<usize>,
    /// Element offset of this segment's slots within the iteration struct.
    pub offset: usize,
}

impl Segment {
    /// Total slots (own + duplicated).
    pub fn size(&self) -> usize {
        self.own.len() + self.dups.len()
    }
}

/// Layer shape chosen for a region.
#[derive(Clone, Debug)]
pub enum RegionLayout {
    /// Pass 1 only (AoS layout, cache-resident tape).
    LayoutOnly,
    /// The region loop nest is tiled by `tile_iters` iterations of the
    /// *boundary* loop per layer. `collapse` inner loops of the path are
    /// absorbed whole into each layer's struct (a layer spans complete
    /// inner-loop nests when they fit — the paper's layers are cut over
    /// the unrolled dataflow, not per source loop).
    Tiled {
        /// Boundary-loop iterations per layer.
        tile_iters: u64,
        /// Trailing path loops absorbed into the struct.
        collapse: usize,
        /// Product of the collapsed loops' trip counts.
        inner_prod: u64,
    },
    /// The region body is cut into statement segments.
    Segmented {
        /// The segments, in source order.
        segments: Vec<Segment>,
    },
}

/// Where one static tape access lands in the compiled layout.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Site {
    /// Region index in [`LayerPlan::regions`].
    pub region: usize,
    /// Tape index in [`Gradient::tapes`].
    pub tape: usize,
    /// Element offset within the full iteration struct (DRAM layout).
    pub global_off: usize,
    /// Segment the access belongs to (segmented layouts only).
    pub segment: Option<usize>,
    /// Offset within the segment's scratchpad struct (equals
    /// `global_off` for non-segmented layouts).
    pub local_off: usize,
}

/// The per-region compiled layout.
#[derive(Clone, Debug)]
pub struct RegionPlan {
    /// The pass-1 region.
    pub region: Region,
    /// Layer shape.
    pub layout: RegionLayout,
    /// Elements per iteration struct, including duplicated slots.
    pub rsize_total: usize,
    /// First scratchpad entry of this region's range.
    pub spad_base: u32,
    /// Entries in this region's range (both double-buffer halves).
    pub spad_range: u32,
    /// Dynamic forward layers this region contributes.
    pub fwd_layers: u64,
}

impl RegionPlan {
    /// Length in elements of the merged DRAM region array.
    pub fn merged_len(&self) -> usize {
        (self.region.trip_product as usize) * self.rsize_total
    }
}

/// Pass 2 output: every region's layout plus per-access sites.
#[derive(Clone, Debug)]
pub struct LayerPlan {
    /// Per-region plans.
    pub regions: Vec<RegionPlan>,
    /// Unmanaged tape indices (top-level stores, left on the cache path).
    pub unmanaged: Vec<usize>,
    /// Tape-store instruction → site.
    pub store_site: HashMap<InstId, Site>,
    /// Tape-load instruction → site.
    pub load_site: HashMap<InstId, Site>,
    /// Nesting levels the scratchpad was partitioned into.
    pub levels: usize,
    /// Total dynamic FWD layers.
    pub total_fwd_layers: u64,
}

/// Finds the body of loop `l` in `func`.
pub fn find_loop_body(func: &Function, l: LoopId) -> Option<&[Stmt]> {
    fn walk(stmts: &[Stmt], l: LoopId) -> Option<&[Stmt]> {
        for s in stmts {
            if let Stmt::For { loop_id, body } = s {
                if *loop_id == l {
                    return Some(body);
                }
                if let Some(b) = walk(body, l) {
                    return Some(b);
                }
            }
        }
        None
    }
    walk(&func.body, l)
}

/// Top-level statement position in `body` whose subtree contains `inst`.
pub fn stmt_pos_of_inst(body: &[Stmt], inst: InstId) -> Option<usize> {
    fn contains(s: &Stmt, inst: InstId) -> bool {
        match s {
            Stmt::Inst(i) => *i == inst,
            Stmt::For { body, .. } => body.iter().any(|s| contains(s, inst)),
        }
    }
    body.iter().position(|s| contains(s, inst))
}

fn src_stmt_of(spans: &[tapeflow_autodiff::Span], pos: usize) -> Option<usize> {
    spans
        .iter()
        .find(|sp| sp.start <= pos && pos < sp.end)
        .map(|sp| sp.src_stmt)
}

/// Builds the layer plan.
///
/// # Errors
///
/// * [`CoreError::SpadTooSmall`] when the scratchpad cannot give every
///   region-nesting level a buffer;
/// * [`CoreError::RegionTooLarge`] when a single statement's tape
///   footprint exceeds a layer even after segmentation.
pub fn plan_layers(
    grad: &Gradient,
    formed: FormedRegions,
    opts: &CompileOptions,
) -> Result<LayerPlan, CoreError> {
    let FormedRegions {
        regions,
        unmanaged,
        levels,
    } = formed;
    let mut plan = LayerPlan {
        regions: Vec::with_capacity(regions.len()),
        unmanaged,
        store_site: HashMap::new(),
        load_site: HashMap::new(),
        levels,
        total_fwd_layers: 0,
    };
    if regions.is_empty() {
        return Ok(plan);
    }
    let aos_only = opts.mode == CompileMode::AosOnly;
    let level_budget = if aos_only {
        0
    } else {
        let b = opts.spad_entries / levels;
        let min_needed = if opts.double_buffer { 2 } else { 1 };
        if b < min_needed {
            return Err(CoreError::SpadTooSmall {
                entries: opts.spad_entries,
                levels,
            });
        }
        b
    };
    let div = if opts.double_buffer { 2 } else { 1 };
    let cap_eff = level_budget / div;

    // Every region restructures a distinct boundary loop; collapsing must
    // not climb onto a loop another region already owns — in particular
    // not onto any loop that other regions live under, since the
    // collapsed buffer would be live across their layers and the
    // level-based scratchpad partitioning would no longer protect it.
    let mut used_boundaries: HashSet<LoopId> = regions
        .iter()
        .map(|r| *r.path.last().expect("non-empty"))
        .collect();
    let mut path_use: HashMap<LoopId, usize> = HashMap::new();
    for r in &regions {
        for l in &r.path {
            *path_use.entry(*l).or_insert(0) += 1;
        }
    }
    for (ri, region) in regions.into_iter().enumerate() {
        let spad_base = (region.level * level_budget) as u32;
        if aos_only {
            let rp = layout_only(grad, ri, region, &mut plan);
            plan.regions.push(rp);
            continue;
        }
        let rp = if region.rsize <= cap_eff {
            tiled(
                grad,
                ri,
                region,
                cap_eff,
                spad_base,
                level_budget,
                &mut used_boundaries,
                &path_use,
                &mut plan,
            )
        } else {
            segmented(
                grad,
                ri,
                region,
                cap_eff,
                spad_base,
                level_budget,
                &mut plan,
            )?
        };
        plan.total_fwd_layers += rp.fwd_layers;
        plan.regions.push(rp);
    }
    Ok(plan)
}

fn home_sites(grad: &Gradient, ri: usize, region: &Region, plan: &mut LayerPlan) {
    for (off, &t) in region.tapes.iter().enumerate() {
        let site = Site {
            region: ri,
            tape: t,
            global_off: off,
            segment: None,
            local_off: off,
        };
        plan.store_site.insert(grad.tapes[t].store, site);
        for &l in &grad.tapes[t].loads {
            plan.load_site.insert(l, site);
        }
    }
}

fn layout_only(grad: &Gradient, ri: usize, region: Region, plan: &mut LayerPlan) -> RegionPlan {
    home_sites(grad, ri, &region, plan);
    RegionPlan {
        rsize_total: region.rsize,
        spad_base: 0,
        spad_range: 0,
        fwd_layers: 0,
        layout: RegionLayout::LayoutOnly,
        region,
    }
}

#[allow(clippy::too_many_arguments)]
fn tiled(
    grad: &Gradient,
    ri: usize,
    region: Region,
    cap_eff: usize,
    spad_base: u32,
    level_budget: usize,
    used_boundaries: &mut HashSet<LoopId>,
    path_use: &HashMap<LoopId, usize>,
    plan: &mut LayerPlan,
) -> RegionPlan {
    home_sites(grad, ri, &region, plan);
    let trips: Vec<u64> = region
        .path
        .iter()
        .map(|l| {
            grad.func
                .loop_info(*l)
                .trip_count()
                .expect("taped loops have static trips")
        })
        .collect();
    // Absorb whole inner loops while a full sweep of them still fits in a
    // layer, so small inner nests (e.g. 5x5 convolution kernels) do not
    // degenerate into per-iteration streams.
    let mut collapse = 0usize;
    let mut inner_prod = 1u64;
    while collapse + 1 < region.path.len() {
        let next = inner_prod * trips[trips.len() - 1 - collapse];
        let next_boundary = region.path[region.path.len() - 2 - collapse];
        if region.rsize as u64 * next <= cap_eff as u64
            && !used_boundaries.contains(&next_boundary)
            && path_use.get(&next_boundary) == Some(&1)
        {
            inner_prod = next;
            collapse += 1;
        } else {
            break;
        }
    }
    if collapse > 0 {
        used_boundaries.insert(region.path[region.path.len() - 1 - collapse]);
    }
    let boundary_trip = trips[trips.len() - 1 - collapse];
    let struct_elems = (region.rsize as u64 * inner_prod).max(1);
    let tile = (cap_eff as u64 / struct_elems).min(boundary_trip).max(1);
    let outer: u64 = trips[..trips.len() - 1 - collapse].iter().product();
    let fwd_layers = outer * boundary_trip.div_ceil(tile);
    RegionPlan {
        rsize_total: region.rsize,
        spad_base,
        spad_range: level_budget as u32,
        fwd_layers,
        layout: RegionLayout::Tiled {
            tile_iters: tile,
            collapse,
            inner_prod,
        },
        region,
    }
}

fn segmented(
    grad: &Gradient,
    ri: usize,
    region: Region,
    cap_eff: usize,
    spad_base: u32,
    level_budget: usize,
    plan: &mut LayerPlan,
) -> Result<RegionPlan, CoreError> {
    let fwd_loop = *region.path.last().expect("non-empty path");
    let rev_loop = grad.loop_map[&fwd_loop];
    let fwd_spans = &grad.spans.fwd[&Some(fwd_loop)];
    let rev_spans = &grad.spans.rev[&Some(rev_loop)];
    let fwd_body = find_loop_body(&grad.func, fwd_loop).expect("region loop exists");
    let rev_body = find_loop_body(&grad.func, rev_loop).expect("mirror loop exists");
    let n_src = fwd_spans.len();

    // Home source statement of each member tape's store.
    let mut own_of_stmt: Vec<Vec<usize>> = vec![Vec::new(); n_src];
    for &t in &region.tapes {
        let pos = stmt_pos_of_inst(fwd_body, grad.tapes[t].store).expect("store in region body");
        let src = src_stmt_of(fwd_spans, pos).expect("store inside a span");
        own_of_stmt[src].push(t);
    }
    // Consuming source statement(s) of each tape's loads.
    let mut consumers: HashMap<usize, Vec<usize>> = HashMap::new();
    for &t in &region.tapes {
        for &l in &grad.tapes[t].loads {
            let pos = stmt_pos_of_inst(rev_body, l).expect("load in mirror body");
            let src = src_stmt_of(rev_spans, pos).expect("load inside a span");
            consumers.entry(t).or_default().push(src);
        }
    }

    // Greedy statement cut, shrinking the budget when duplication
    // overflows a segment.
    let max_stmt = own_of_stmt.iter().map(Vec::len).max().unwrap_or(0);
    if max_stmt > cap_eff {
        return Err(CoreError::RegionTooLarge {
            region: ri,
            slots: max_stmt,
            capacity: cap_eff,
        });
    }
    let mut budget = cap_eff;
    let segments = loop {
        let mut segs: Vec<Segment> = Vec::new();
        let mut start = 0usize;
        let mut own: Vec<usize> = Vec::new();
        for (k, slots) in own_of_stmt.iter().enumerate() {
            if !own.is_empty() && own.len() + slots.len() > budget {
                segs.push(Segment {
                    src_range: (start, k),
                    own: std::mem::take(&mut own),
                    dups: Vec::new(),
                    offset: 0,
                });
                start = k;
            }
            own.extend(slots.iter().copied());
        }
        segs.push(Segment {
            src_range: (start, n_src),
            own,
            dups: Vec::new(),
            offset: 0,
        });
        // Duplicate stores whose consumers sit in another segment.
        let seg_of_stmt: Vec<usize> = (0..n_src)
            .map(|k| {
                segs.iter()
                    .position(|s| s.src_range.0 <= k && k < s.src_range.1)
                    .expect("statement covered")
            })
            .collect();
        let mut dup_pairs: Vec<(usize, usize)> = Vec::new(); // (tape, segment)
        for &t in &region.tapes {
            let store_pos = stmt_pos_of_inst(fwd_body, grad.tapes[t].store).expect("store pos");
            let home_stmt = src_stmt_of(fwd_spans, store_pos).expect("home stmt");
            let home_seg = seg_of_stmt[home_stmt];
            if let Some(cons) = consumers.get(&t) {
                let mut seen = Vec::new();
                for &c in cons {
                    let cs = seg_of_stmt[c];
                    if cs != home_seg && !seen.contains(&cs) {
                        seen.push(cs);
                        dup_pairs.push((t, cs));
                    }
                }
            }
        }
        for &(t, s) in &dup_pairs {
            segs[s].dups.push(t);
        }
        if segs.iter().all(|s| s.size() <= cap_eff) {
            break segs;
        }
        if budget == max_stmt.max(1) {
            let worst = segs.iter().map(Segment::size).max().unwrap_or(0);
            return Err(CoreError::RegionTooLarge {
                region: ri,
                slots: worst,
                capacity: cap_eff,
            });
        }
        budget -= 1;
    };

    // Assign offsets and record sites.
    let mut segments = segments;
    let mut offset = 0usize;
    for seg in &mut segments {
        seg.offset = offset;
        offset += seg.size();
    }
    let rsize_total = offset;
    let seg_of_stmt: Vec<usize> = (0..n_src)
        .map(|k| {
            segments
                .iter()
                .position(|s| s.src_range.0 <= k && k < s.src_range.1)
                .expect("statement covered")
        })
        .collect();
    for (si, seg) in segments.iter().enumerate() {
        for (j, &t) in seg.own.iter().enumerate() {
            let site = Site {
                region: ri,
                tape: t,
                global_off: seg.offset + j,
                segment: Some(si),
                local_off: j,
            };
            plan.store_site.insert(grad.tapes[t].store, site);
        }
    }
    // Loads read from the slot (home or duplicate) local to their segment.
    for &t in &region.tapes {
        for &l in &grad.tapes[t].loads {
            let pos = stmt_pos_of_inst(rev_body, l).expect("load pos");
            let src = src_stmt_of(rev_spans, pos).expect("load stmt");
            let si = seg_of_stmt[src];
            let seg = &segments[si];
            let local = if let Some(j) = seg.own.iter().position(|&x| x == t) {
                j
            } else {
                seg.own.len()
                    + seg
                        .dups
                        .iter()
                        .position(|&x| x == t)
                        .expect("duplicate slot present for foreign consumer")
            };
            plan.load_site.insert(
                l,
                Site {
                    region: ri,
                    tape: t,
                    global_off: seg.offset + local,
                    segment: Some(si),
                    local_off: local,
                },
            );
        }
    }
    let fwd_layers = region.trip_product * segments.len() as u64;
    Ok(RegionPlan {
        rsize_total,
        spad_base,
        spad_range: level_budget as u32,
        fwd_layers,
        layout: RegionLayout::Segmented { segments },
        region,
    })
}
