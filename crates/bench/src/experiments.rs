//! One module-level function per paper table/figure.
//!
//! Each experiment returns [`Table`]s whose rows mirror what the paper
//! plots; `EXPERIMENTS.md` records a reference run against the paper's
//! numbers.

use crate::harness::{geomean, sys_for, Config, Prepared, SweepPlanner};
use crate::pool;
use crate::table::{kib, pct, ratio, Table};
use std::collections::{BTreeMap, HashMap};
use std::time::Duration;
use tapeflow_benchmarks::{by_name, Benchmark, Scale, NAMES};
use tapeflow_ir::analysis;
use tapeflow_ir::transform::unroll_loop;
use tapeflow_sim::json::Value;
use tapeflow_sim::{EnergyTable, ReplacementPolicy, SystemConfig};

/// All experiment ids, in paper order, plus the DESIGN.md ablations.
pub const IDS: [&str; 19] = [
    "table2.1",
    "fig1.3",
    "fig2.6",
    "fig2.7",
    "fig2.8",
    "table4.1",
    "table4.2",
    "fig4.1",
    "fig4.2",
    "fig4.3",
    "fig4.4",
    "fig4.5",
    "fig4.6",
    "fig4.7",
    "fig4.8",
    "fig4.9",
    "fig4.10",
    "ablation",
    "regpressure",
];

const E32K: Config = Config::Enzyme { cache_bytes: 32768 };

/// Hot-spot rows folded per configuration entry by
/// [`Lab::json_report_with`] — enough to name the dominant source ops
/// without ballooning the results document.
pub const HOT_SPOT_TOP: usize = 5;

fn t_cfg(cache_bytes: usize) -> Config {
    Config::Tapeflow {
        cache_bytes,
        spad_bytes: 1024,
        double_buffer: true,
        compress: false,
    }
}

/// One unit of simulation work the parallel warm-up fans out:
/// a configuration, the full system it runs on, and whether node times
/// are recorded.
#[derive(Clone, Copy, Debug)]
struct SimItem {
    config: Config,
    sys: SystemConfig,
    record: bool,
}

/// A [`SimItem`] on the default system for its cache size.
fn std_item(config: Config, record: bool) -> SimItem {
    SimItem {
        sys: sys_for(&config),
        config,
        record,
    }
}

/// A derived benchmark some experiment simulates besides the nine
/// registry programs: an unrolled registry benchmark (fig 4.8/4.10) or a
/// sized pathfinder grid (fig 4.9). Variants are first-class
/// [`Prepared`] states in the [`Lab`], built once, warmed by the same
/// parallel plan as the registry sweep and reused across an
/// `experiments all` invocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum VariantSpec {
    /// A registry benchmark with one loop unrolled by `factor`
    /// (factor 1 = the unmodified benchmark).
    Unrolled {
        bench: &'static str,
        loop_name: &'static str,
        factor: u64,
    },
    /// `pathfinder` rebuilt on an explicit grid.
    PathfinderSized { rows: usize, cols: usize },
}

impl VariantSpec {
    /// Builds the variant's benchmark; `Err` carries the note text the
    /// owning table prints (e.g. an unrollability diagnosis).
    fn build(&self, scale: Scale) -> Result<Benchmark, String> {
        match *self {
            VariantSpec::Unrolled {
                bench,
                loop_name,
                factor,
            } => {
                let mut b = by_name(bench, scale);
                if factor > 1 {
                    b.func = unroll_loop(&b.func, loop_name, factor).map_err(|e| e.to_string())?;
                }
                Ok(b)
            }
            VariantSpec::PathfinderSized { rows, cols } => Ok(pathfinder_sized(rows, cols)),
        }
    }
}

/// An experiment's simulation plan: registry configurations to prepare
/// without simulating, registry (config, system, record) triples to
/// simulate across all nine benchmarks, and per-variant triples.
#[derive(Debug, Default)]
struct WarmPlan {
    prep: Vec<Config>,
    items: Vec<SimItem>,
    variants: Vec<(VariantSpec, Vec<SimItem>)>,
}

/// The lab: prepared benchmarks shared across experiments.
#[derive(Debug)]
pub struct Lab {
    /// Input scale for every benchmark.
    pub scale: Scale,
    jobs: usize,
    prepared: Vec<Prepared>,
    /// Derived-benchmark states (unrolled / resized), built on first use
    /// and reused across experiments. `Err` caches a build failure's
    /// note text.
    variants: Vec<(VariantSpec, Result<Prepared, String>)>,
}

impl Lab {
    /// Prepares the full suite at `scale`, serially.
    pub fn new(scale: Scale) -> Self {
        Self::with_jobs(scale, 1)
    }

    /// Prepares the full suite at `scale` using up to `jobs` worker
    /// threads — both here (per-benchmark gradient preparation) and for
    /// every subsequent [`Lab::run`], which pre-simulates the
    /// experiment's configurations in parallel before the (serial,
    /// order-preserving) table construction reads the warm memo.
    /// Results are byte-identical for every `jobs` value.
    pub fn with_jobs(scale: Scale, jobs: usize) -> Self {
        let jobs = jobs.max(1);
        let names: Vec<&'static str> = NAMES.to_vec();
        let prepared =
            pool::map_parallel(&names, jobs, |_, name| Prepared::new(by_name(name, scale)));
        Lab {
            scale,
            jobs,
            prepared,
            variants: Vec::new(),
        }
    }

    /// Worker threads used by this lab.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The [`Prepared`] state behind a derived benchmark, built on first
    /// use and memoized for the lifetime of the lab (so `experiments
    /// all` reuses one state across figures). `Err` is the cached build
    /// failure's note text.
    fn variant_mut(&mut self, spec: VariantSpec) -> &mut Result<Prepared, String> {
        if let Some(i) = self.variants.iter().position(|(s, _)| *s == spec) {
            return &mut self.variants[i].1;
        }
        let built = spec.build(self.scale).map(Prepared::new);
        self.variants.push((spec, built));
        &mut self.variants.last_mut().expect("just pushed").1
    }

    /// Pre-populates the simulation memo for a [`WarmPlan`]: stage 1
    /// builds any missing variant states in parallel, stage 2 prepares
    /// programs in parallel across benchmarks and variants (each needs
    /// `&mut` for its own memo), stage 3 fans simulations out over
    /// read-only `(state, item)` pairs, stage 4 inserts the results
    /// serially in a fixed order. With one job this is a no-op — the
    /// experiment code fills the memo lazily, as before, with
    /// byte-identical results.
    fn warm_items(&mut self, plan: &WarmPlan) {
        if self.jobs <= 1 {
            return;
        }
        let mut prep: Vec<Config> = plan.prep.clone();
        prep.extend(plan.items.iter().map(|it| it.config));
        if prep.is_empty() && plan.variants.is_empty() {
            return;
        }
        // Stage 1: build missing variant benchmarks (gradient included)
        // in parallel, then append in plan order for determinism.
        let missing: Vec<VariantSpec> = plan
            .variants
            .iter()
            .map(|(s, _)| *s)
            .filter(|s| !self.variants.iter().any(|(have, _)| have == s))
            .collect();
        let scale = self.scale;
        let built = pool::map_parallel(&missing, self.jobs, |_, spec| {
            spec.build(scale).map(Prepared::new)
        });
        self.variants.extend(missing.into_iter().zip(built));
        // Stage 2: compile programs + traces (needs &mut per state).
        pool::for_each_mut_parallel(&mut self.prepared, self.jobs, |p| {
            for c in &prep {
                let _ = p.ensure_program(c);
            }
        });
        let variant_items: Vec<(VariantSpec, &[SimItem])> = plan
            .variants
            .iter()
            .map(|(s, its)| (*s, its.as_slice()))
            .collect();
        pool::for_each_mut_parallel(&mut self.variants, self.jobs, |(spec, state)| {
            let Ok(p) = state else { return };
            for (s, items) in &variant_items {
                if s == spec {
                    for it in *items {
                        let _ = p.ensure_program(&it.config);
                    }
                }
            }
        });
        // Stage 3: bucket the remaining work per owning state and
        // record flavor, build one [`SweepPlanner`] per bucket (which
        // groups units by trace identity — one generalized sweep
        // session per trace group, so same-trace configurations replay
        // each other's outcome streams instead of re-running cold), and
        // fan the planners out over the pool. Stage 4 fills the memo
        // serially in a fixed order; reports are byte-identical to the
        // old cold per-item fan-out (the session contract).
        #[derive(Clone, Copy, PartialEq, Eq, Hash)]
        enum Slot {
            Registry(usize),
            Variant(usize),
        }
        let mut work: Vec<(Slot, SimItem)> = (0..self.prepared.len())
            .flat_map(|bi| plan.items.iter().map(move |it| (Slot::Registry(bi), *it)))
            .collect();
        for (spec, items) in &plan.variants {
            if let Some(vi) = self.variants.iter().position(|(s, _)| s == spec) {
                if self.variants[vi].1.is_ok() {
                    work.extend(items.iter().map(|it| (Slot::Variant(vi), *it)));
                }
            }
        }
        let state_of = |slot: &Slot| -> &Prepared {
            match slot {
                Slot::Registry(bi) => &self.prepared[*bi],
                Slot::Variant(vi) => self.variants[*vi].1.as_ref().expect("filtered above"),
            }
        };
        work.retain(|(slot, it)| !state_of(slot).has_sim(&it.config, &it.sys, it.record));
        struct Bucket {
            slot: Slot,
            record: bool,
            /// Indices into `work`, in work order (= planner unit order).
            members: Vec<usize>,
            units: Vec<(Config, SystemConfig)>,
        }
        let mut bucket_of: HashMap<(Slot, bool), usize> = HashMap::new();
        let mut buckets: Vec<Bucket> = Vec::new();
        for (wi, (slot, it)) in work.iter().enumerate() {
            let bi = *bucket_of.entry((*slot, it.record)).or_insert_with(|| {
                buckets.push(Bucket {
                    slot: *slot,
                    record: it.record,
                    members: Vec::new(),
                    units: Vec::new(),
                });
                buckets.len() - 1
            });
            buckets[bi].members.push(wi);
            buckets[bi].units.push((it.config, it.sys));
        }
        let planners: Vec<SweepPlanner> = buckets
            .iter()
            .map(|b| {
                let state = match b.slot {
                    Slot::Registry(bi) => &mut self.prepared[bi],
                    Slot::Variant(vi) => self.variants[vi].1.as_mut().expect("filtered above"),
                };
                SweepPlanner::new(state, &b.units, b.record)
            })
            .collect();
        let per_bucket = pool::map_parallel(&planners, self.jobs, |_, planner| planner.run());
        for (b, reports) in buckets.iter().zip(per_bucket) {
            for (&wi, report) in b.members.iter().zip(reports) {
                let Some(report) = report else { continue };
                let (slot, it) = &work[wi];
                let state = match slot {
                    Slot::Registry(bi) => &mut self.prepared[*bi],
                    Slot::Variant(vi) => self.variants[*vi].1.as_mut().expect("filtered above"),
                };
                state.insert_sim(&it.config, &it.sys, it.record, report);
            }
        }
    }

    /// The simulation plan behind each experiment id: registry
    /// configurations to prepare without simulating, registry (config,
    /// system, record) triples to simulate, and derived-benchmark
    /// variants (fig4.8–4.10's unrolled/resized states) with their own
    /// triples — all of which parallelize like the rest of the sweep.
    fn warm_plan(id: &str) -> WarmPlan {
        fn plain(prep: Vec<Config>, items: Vec<SimItem>) -> WarmPlan {
            WarmPlan {
                prep,
                items,
                variants: Vec::new(),
            }
        }
        let fifo_8k = {
            let mut sys = SystemConfig::with_cache_bytes(8192);
            sys.cache.policy = ReplacementPolicy::Fifo;
            sys
        };
        match id {
            "fig1.3" | "fig2.6" | "regpressure" => plain(vec![E32K], vec![]),
            "fig2.7" | "fig2.8" => plain(vec![], vec![std_item(E32K, true)]),
            "table4.1" => plain(vec![E32K, t_cfg(32768)], vec![]),
            "fig4.1" => plain(
                vec![],
                vec![std_item(E32K, false), std_item(t_cfg(32768), false)],
            ),
            "fig4.2" => {
                let mut items: Vec<SimItem> = [1024usize, 2048, 8192, 32768, 131072]
                    .into_iter()
                    .map(|c| std_item(Config::enzyme(c), false))
                    .collect();
                items.push(std_item(t_cfg(1024), false));
                items.push(std_item(t_cfg(32768), false));
                plain(vec![], items)
            }
            "fig4.3" => plain(
                vec![],
                vec![
                    std_item(Config::enzyme(4096), false),
                    std_item(Config::AosOnCache { cache_bytes: 4096 }, false),
                ],
            ),
            "fig4.4" | "fig4.5" => plain(
                vec![],
                vec![std_item(E32K, false), std_item(t_cfg(2048), false)],
            ),
            "fig4.6" => {
                let configs = [
                    Config::enzyme(1024),
                    Config::enzyme(8192),
                    Config::enzyme(32768),
                    Config::enzyme(131072),
                    t_cfg(1024),
                    t_cfg(2048),
                    t_cfg(32768),
                ];
                plain(
                    vec![],
                    configs.iter().map(|c| std_item(*c, false)).collect(),
                )
            }
            "fig4.7" => {
                let mut items = vec![std_item(E32K, false)];
                for spad_bytes in [64usize, 128, 256, 512, 1024, 2048] {
                    items.push(std_item(
                        Config::Tapeflow {
                            cache_bytes: 32768,
                            spad_bytes,
                            double_buffer: true,
                            compress: false,
                        },
                        false,
                    ));
                }
                plain(vec![], items)
            }
            "fig4.8" => {
                let items: Vec<SimItem> = [128usize, 256, 512, 1024, 2048]
                    .into_iter()
                    .map(|s| {
                        std_item(
                            Config::Tapeflow {
                                cache_bytes: 32768,
                                spad_bytes: s,
                                double_buffer: true,
                                compress: false,
                            },
                            false,
                        )
                    })
                    .collect();
                WarmPlan {
                    prep: vec![],
                    items: vec![],
                    variants: [1u64, 2, 4]
                        .into_iter()
                        .map(|factor| {
                            (
                                VariantSpec::Unrolled {
                                    bench: "somier",
                                    loop_name: "z",
                                    factor,
                                },
                                items.clone(),
                            )
                        })
                        .collect(),
                }
            }
            "fig4.9" => WarmPlan {
                prep: vec![],
                items: vec![],
                variants: fig4_9_grids()
                    .into_iter()
                    .map(|(_, spec)| {
                        (
                            spec,
                            vec![std_item(E32K, false), std_item(t_cfg(32768), false)],
                        )
                    })
                    .collect(),
            },
            "fig4.10" => WarmPlan {
                prep: vec![],
                items: vec![],
                variants: [1u64, 2, 4, 8]
                    .into_iter()
                    .map(|factor| {
                        (
                            VariantSpec::Unrolled {
                                bench: "pathfinder",
                                loop_name: "c",
                                factor,
                            },
                            vec![std_item(E32K, false), std_item(t_cfg(32768), false)],
                        )
                    })
                    .collect(),
            },
            "ablation" => plain(
                vec![],
                vec![
                    std_item(t_cfg(32768), false),
                    std_item(Config::tapeflow_compressed(32768), false),
                    std_item(
                        Config::Tapeflow {
                            cache_bytes: 32768,
                            spad_bytes: 1024,
                            double_buffer: false,
                            compress: false,
                        },
                        false,
                    ),
                    std_item(Config::enzyme(8192), false),
                    SimItem {
                        config: Config::enzyme(8192),
                        sys: fifo_8k,
                        record: false,
                    },
                ],
            ),
            _ => WarmPlan::default(),
        }
    }

    /// Runs one experiment by id.
    ///
    /// # Panics
    ///
    /// Panics on an unknown id; see [`IDS`].
    pub fn run(&mut self, id: &str) -> Vec<Table> {
        let plan = Self::warm_plan(id);
        self.warm_items(&plan);
        match id {
            "table2.1" => vec![table2_1()],
            "fig1.3" => vec![self.fig1_3()],
            "fig2.6" => vec![self.fig2_6()],
            "fig2.7" => vec![self.fig2_7()],
            "fig2.8" => vec![self.fig2_8()],
            "table4.1" => vec![self.table4_1()],
            "table4.2" => vec![table4_2()],
            "fig4.1" => vec![self.fig4_1()],
            "fig4.2" => vec![self.fig4_2()],
            "fig4.3" => vec![self.fig4_3()],
            "fig4.4" => vec![self.fig4_4()],
            "fig4.5" => vec![self.fig4_5()],
            "fig4.6" => vec![self.fig4_6()],
            "fig4.7" => vec![self.fig4_7()],
            "fig4.8" => vec![self.fig4_8()],
            "fig4.9" => vec![self.fig4_9()],
            "fig4.10" => vec![self.fig4_10()],
            "ablation" => self.ablations(),
            "regpressure" => vec![self.regpressure()],
            other => panic!("unknown experiment {other:?} (see IDS)"),
        }
    }

    // ---- Chapter 2: characterization ---------------------------------------

    /// Figure 1.3: how the gradient function's memory accesses split
    /// across input / output / temp / tape / shadow state, and the
    /// REV-over-FWD expansion.
    fn fig1_3(&mut self) -> Table {
        use tapeflow_ir::ArrayKind::*;
        let mut t = Table::new(
            "Fig 1.3 — state distribution of the gradient function's accesses",
            &[
                "bench",
                "input",
                "output+temp",
                "tape",
                "shadow",
                "grad/fwd accesses",
            ],
        );
        for p in &mut self.prepared {
            // Accesses of the original (FWD-only) function.
            let mut fmem = tapeflow_ir::Memory::for_function(&p.bench.func);
            for i in 0..p.bench.func.arrays().len() {
                fmem.clone_array_from(&p.bench.mem, tapeflow_ir::ArrayId::new(i));
            }
            let ftrace = tapeflow_ir::trace::trace_function(
                &p.bench.func,
                &mut fmem,
                tapeflow_ir::trace::TraceOptions::default(),
            )
            .expect("forward trace");
            let fwd_accesses = analysis::trace_stats(&ftrace).mem_accesses.max(1);
            let grad_func = p.grad.func.clone();
            let tr = p.trace(&E32K);
            let kinds = analysis::accesses_by_array_kind(&grad_func, tr);
            let get = |k| kinds.get(&k).copied().unwrap_or(0);
            let total: u64 = kinds.values().sum();
            t.row(vec![
                p.bench.name.into(),
                pct(get(Input) as f64 / total as f64),
                pct((get(Output) + get(InOut) + get(Temp)) as f64 / total as f64),
                pct(get(Tape) as f64 / total as f64),
                pct(get(Shadow) as f64 / total as f64),
                ratio(total as f64 / fwd_accesses as f64),
            ]);
        }
        t.note("paper: the gradient function multiplies the FWD's accesses 4-5x; tape is 20-40%");
        t
    }

    /// The thesis's register-allocation tool (§1.5): liveness, minimum
    /// spill-free registers and spill counts on the gradient dataflow.
    fn regpressure(&mut self) -> Table {
        let mut t = Table::new(
            "Register pressure of the gradient dataflow (thesis §1.5 tool)",
            &[
                "bench",
                "dyn values",
                "min regs (no spill)",
                "spills@32",
                "spills@64",
            ],
        );
        for p in &mut self.prepared {
            let tr = p.trace(&E32K);
            let r32 = analysis::register_pressure(tr, 32);
            let r64 = analysis::register_pressure(tr, 64);
            t.row(vec![
                p.bench.name.into(),
                r32.values.to_string(),
                r32.max_live.to_string(),
                r32.spills.to_string(),
                r64.spills.to_string(),
            ]);
        }
        t.note("tape values dominate the live set: spilling them is what the cache was doing");
        t
    }

    /// Figure 2.6 (and 1.3): FWD/REV/TAPE edge distribution and working
    /// set of the Enzyme-generated gradient.
    fn fig2_6(&mut self) -> Table {
        let mut t = Table::new(
            "Fig 2.6 — edge distribution and working set (Enzyme baseline)",
            &[
                "bench",
                "fwd edges",
                "rev edges",
                "tape edges",
                "tape %",
                "mem acc",
                "tape acc %",
                "working set",
            ],
        );
        for p in &mut self.prepared {
            let tr = p.trace(&E32K);
            let s = analysis::trace_stats(tr);
            let total = s.total_edges() as f64;
            t.row(vec![
                p.bench.name.into(),
                s.edges[0].to_string(),
                s.edges[1].to_string(),
                s.edges[2].to_string(),
                pct(s.edges[2] as f64 / total),
                s.mem_accesses.to_string(),
                pct(s.tape_access_fraction()),
                kib(s.max_live_bytes),
            ]);
        }
        t.note("paper: tape accesses are 20-40% of memory accesses (Obs 1.1)");
        t
    }

    /// Figure 2.7: average lifetime of tape edges vs FWD edges, in cycles.
    fn fig2_7(&mut self) -> Table {
        let mut t = Table::new(
            "Fig 2.7 — average edge lifetime in cycles (Enzyme_32k)",
            &["bench", "tape avg", "fwd avg", "rev avg", "tape/fwd"],
        );
        for p in &mut self.prepared {
            let times = p
                .sim(&E32K, true)
                .node_finish
                .clone()
                .expect("times recorded");
            let tr = p.trace(&E32K);
            let lt = analysis::edge_lifetimes(tr, &times);
            t.row(vec![
                p.bench.name.into(),
                format!("{:.0}", lt.tape_avg),
                format!("{:.0}", lt.fwd_avg),
                format!("{:.0}", lt.rev_avg),
                ratio(lt.tape_over_fwd()),
            ]);
        }
        t.note("paper: tape values live up to 100x longer than other registers (Obs 1.2)");
        t
    }

    /// Figure 2.8: 5-quantile tape-lifetime distribution.
    fn fig2_8(&mut self) -> Table {
        let mut t = Table::new(
            "Fig 2.8 — tape lifetime distribution, 5 quantiles (Kcycles)",
            &["bench", "q1", "q2", "q3", "q4", "q5 (max)"],
        );
        for p in &mut self.prepared {
            let times = p
                .sim(&E32K, true)
                .node_finish
                .clone()
                .expect("times recorded");
            let tr = p.trace(&E32K);
            let buckets = analysis::tape_lifetime_quantiles(tr, &times, 5);
            let mut row = vec![p.bench.name.to_string()];
            for b in &buckets {
                row.push(format!("{:.1}", b.max_lifetime as f64 / 1000.0));
            }
            t.row(row);
        }
        t.note("mixed short/long reuse across benchmarks defeats any single replacement policy (Obs 1.3)");
        t
    }

    // ---- Chapter 4: evaluation ------------------------------------------------

    /// Table 4.1: benchmark description.
    fn table4_1(&mut self) -> Table {
        let mut t = Table::new(
            "Table 4.1 — benchmark description",
            &[
                "name",
                "class",
                "suite",
                "input params",
                "arrays/loop",
                "work.set",
                "tape bytes",
                "layer count",
            ],
        );
        for p in &mut self.prepared {
            let arrays_per_loop = max_arrays_per_loop(&p.bench);
            let tr = p.trace(&E32K);
            let s = analysis::trace_stats(tr);
            let compiled = p.compiled(&t_cfg(32768));
            let (tape_bytes, layers) =
                (compiled.stats.merged_tape_bytes, compiled.stats.fwd_layers);
            t.row(vec![
                p.bench.name.into(),
                if p.bench.regular {
                    "regular"
                } else {
                    "irregular"
                }
                .into(),
                p.bench.suite.into(),
                p.bench.params.clone(),
                arrays_per_loop.to_string(),
                kib(s.max_live_bytes),
                kib(tape_bytes),
                layers.to_string(),
            ]);
        }
        t
    }

    /// Figure 4.1: speedup and REV hit-rate improvement, Tflow_32k vs
    /// Enzyme_32k.
    fn fig4_1(&mut self) -> Table {
        let mut t = Table::new(
            "Fig 4.1 — Tflow_32k vs Enzyme_32k: speedup and REV hit rate",
            &[
                "bench",
                "speedup",
                "fwd speedup",
                "rev speedup",
                "enzyme rev hit",
                "tflow rev hit",
            ],
        );
        let mut speedups = Vec::new();
        for p in &mut self.prepared {
            let ez = p.sim(&E32K, false).clone();
            let tf = p.sim(&t_cfg(32768), false).clone();
            let sp = tf.speedup_over(&ez);
            speedups.push(sp);
            t.row(vec![
                p.bench.name.into(),
                ratio(sp),
                ratio(ez.fwd_cycles as f64 / tf.fwd_cycles.max(1) as f64),
                ratio(ez.rev_cycles() as f64 / tf.rev_cycles().max(1) as f64),
                pct(ez.cache.rev_hit_rate()),
                pct(tf.cache.rev_hit_rate()),
            ]);
        }
        t.note(format!("geomean speedup {}", ratio(geomean(&speedups))));
        t.note("paper: 1.3-2.5x speedup, REV hit rate improves most on irregular benchmarks");
        t
    }

    /// Figure 4.2: normalized DRAM accesses across cache sizes.
    fn fig4_2(&mut self) -> Table {
        let ladder = [1024usize, 2048, 8192, 32768, 131072];
        let mut headers: Vec<String> = vec!["bench".into()];
        for c in ladder {
            headers.push(Config::enzyme(c).label());
        }
        headers.push("Tflow_1k".into());
        headers.push("Tflow_32k".into());
        let hdr_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut t = Table::new(
            "Fig 4.2 — DRAM accesses normalized to Enzyme_32k (lower is better)",
            &hdr_refs,
        );
        for p in &mut self.prepared {
            let base = p.sim(&E32K, false).dram_accesses().max(1) as f64;
            let mut row = vec![p.bench.name.to_string()];
            for c in ladder {
                let v = p.sim(&Config::enzyme(c), false).dram_accesses() as f64;
                row.push(format!("{:.2}", v / base));
            }
            for cfg in [t_cfg(1024), t_cfg(32768)] {
                let v = p.sim(&cfg, false).dram_accesses() as f64;
                row.push(format!("{:.2}", v / base));
            }
            t.row(row);
        }
        t.note("paper: up to 14x reduction (mttkrp); regular benchmarks move least");
        t
    }

    /// Figure 4.3: struct-of-arrays (Enzyme) vs array-of-structs (Pass 1
    /// only), both cache-resident, under cache pressure (the regime the
    /// paper's layout argument targets: concurrent tape streams exceeding
    /// the associativity).
    fn fig4_3(&mut self) -> Table {
        let cache = 4096usize;
        let mut t = Table::new(
            "Fig 4.3 — AoS (Pass 1 only) vs SoA layout, both on a pressured 4k cache",
            &["bench", "SoA dram", "AoS dram", "AoS/SoA", "cycles AoS/SoA"],
        );
        let mut ratios = Vec::new();
        for p in &mut self.prepared {
            let soa = p.sim(&Config::enzyme(cache), false).clone();
            let aos = p
                .sim(&Config::AosOnCache { cache_bytes: cache }, false)
                .clone();
            let r = aos.dram_accesses() as f64 / soa.dram_accesses().max(1) as f64;
            ratios.push(r);
            t.row(vec![
                p.bench.name.into(),
                soa.dram_accesses().to_string(),
                aos.dram_accesses().to_string(),
                format!("{r:.2}"),
                format!("{:.2}", aos.cycles as f64 / soa.cycles.max(1) as f64),
            ]);
        }
        t.note(format!("geomean AoS/SoA DRAM {:.2}", geomean(&ratios)));
        t.note("paper: up to 30% less traffic; gains concentrate where many tape arrays stream concurrently");
        t
    }

    /// Figure 4.4: on-chip energy reduction, ISO-perform setup.
    fn fig4_4(&mut self) -> Table {
        let mut t = Table::new(
            "Fig 4.4 — on-chip energy reduction: Enzyme_32k / Tflow_2k (higher is better)",
            &[
                "bench",
                "enzyme pJ",
                "tflow pJ",
                "reduction",
                "iso-perform slowdown",
            ],
        );
        let mut reds = Vec::new();
        for p in &mut self.prepared {
            let ez = p.sim(&E32K, false).clone();
            let tf = p.sim(&t_cfg(2048), false).clone();
            let red = ez.energy.on_chip_pj() / tf.energy.on_chip_pj().max(1.0);
            reds.push(red);
            t.row(vec![
                p.bench.name.into(),
                format!("{:.2e}", ez.energy.on_chip_pj()),
                format!("{:.2e}", tf.energy.on_chip_pj()),
                ratio(red),
                ratio(ez.cycles as f64 / tf.cycles as f64),
            ]);
        }
        t.note(format!("geomean reduction {}", ratio(geomean(&reds))));
        t.note("paper: up to 8.2x on-chip energy reduction at iso performance");
        t
    }

    /// Figure 4.5: normalized on-chip energy with cache-access reduction.
    fn fig4_5(&mut self) -> Table {
        let mut t = Table::new(
            "Fig 4.5 — normalized on-chip energy (Tflow_2k / Enzyme_32k, lower is better)",
            &[
                "bench",
                "norm energy",
                "cache acc reduction",
                "cache pJ",
                "spad pJ",
                "stream pJ",
            ],
        );
        for p in &mut self.prepared {
            let ez = p.sim(&E32K, false).clone();
            let tf = p.sim(&t_cfg(2048), false).clone();
            let norm = tf.energy.on_chip_pj() / ez.energy.on_chip_pj().max(1.0);
            let acc_red = 1.0 - tf.cache.accesses() as f64 / ez.cache.accesses().max(1) as f64;
            t.row(vec![
                p.bench.name.into(),
                format!("{norm:.3}"),
                pct(acc_red),
                format!("{:.2e}", tf.energy.cache_pj),
                format!("{:.2e}", tf.energy.spad_pj),
                format!("{:.2e}", tf.energy.stream_pj),
            ]);
        }
        t.note("paper: e.g. nn offloads 33% of cache accesses; spad costs ~1% of a 32k cache");
        t
    }

    /// Figure 4.6: performance-energy sweep over configurations.
    fn fig4_6(&mut self) -> Table {
        let configs = [
            Config::enzyme(1024),
            Config::enzyme(8192),
            Config::enzyme(32768),
            Config::enzyme(131072),
            t_cfg(1024),
            t_cfg(2048),
            t_cfg(32768),
        ];
        let mut headers = vec!["bench".to_string()];
        for c in &configs {
            headers.push(format!("{} perf|energy", c.label()));
        }
        let hdr_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut t = Table::new(
            "Fig 4.6 — performance-energy sweep, normalized to Enzyme_1k",
            &hdr_refs,
        );
        for p in &mut self.prepared {
            let base = p.sim(&Config::enzyme(1024), false).clone();
            let mut row = vec![p.bench.name.to_string()];
            for c in &configs {
                let r = p.sim(c, false);
                let perf = base.cycles as f64 / r.cycles.max(1) as f64;
                let energy = r.energy.on_chip_pj() / base.energy.on_chip_pj().max(1.0);
                row.push(format!("{perf:.2}|{energy:.2}"));
            }
            t.row(row);
        }
        t.note("towards high perf and low energy is better (paper's top-left quadrant)");
        t
    }

    /// Figure 4.7: scratchpad size vs normalized performance.
    fn fig4_7(&mut self) -> Table {
        let sizes = [64usize, 128, 256, 512, 1024, 2048];
        let mut headers = vec!["bench".to_string()];
        headers.extend(sizes.iter().map(|s| format!("{s}B")));
        let hdr_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut t = Table::new(
            "Fig 4.7 — scratchpad size vs speedup over Enzyme_32k",
            &hdr_refs,
        );
        for p in &mut self.prepared {
            let ez = p.sim(&E32K, false).cycles.max(1) as f64;
            let mut row = vec![p.bench.name.to_string()];
            for s in sizes {
                let cfg = Config::Tapeflow {
                    cache_bytes: 32768,
                    spad_bytes: s,
                    double_buffer: true,
                    compress: false,
                };
                match p.try_sim(&cfg, false) {
                    Some(r) => row.push(format!("{:.2}", ez / r.cycles.max(1) as f64)),
                    None => row.push("n/a".into()),
                }
            }
            t.row(row);
        }
        t.note("paper: 64B to 1KB buys 25-50%; gains flatten once layer parallelism saturates");
        t
    }

    /// Figure 4.8: normalized ILP vs scratchpad size across unroll
    /// factors (somier).
    fn fig4_8(&mut self) -> Table {
        let sizes = [128usize, 256, 512, 1024, 2048];
        let unrolls = [1u64, 2, 4];
        let mut headers = vec!["unroll".to_string()];
        headers.extend(sizes.iter().map(|s| format!("{s}B")));
        let hdr_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut t = Table::new(
            "Fig 4.8 — somier: ILP vs scratchpad size and unroll factor (norm. to u1@128B)",
            &hdr_refs,
        );
        let mut norm = None;
        for u in unrolls {
            let spec = VariantSpec::Unrolled {
                bench: "somier",
                loop_name: "z",
                factor: u,
            };
            let p = match self.variant_mut(spec) {
                Ok(p) => p,
                Err(e) => {
                    t.note(format!("u{u}: skipped ({e})"));
                    continue;
                }
            };
            let mut row = vec![format!("u{u}")];
            for s in sizes {
                let cfg = Config::Tapeflow {
                    cache_bytes: 32768,
                    spad_bytes: s,
                    double_buffer: true,
                    compress: false,
                };
                match p.try_sim(&cfg, false) {
                    Some(r) => {
                        let ilp = r.ilp();
                        let base = *norm.get_or_insert(ilp);
                        row.push(format!("{:.2}", ilp / base));
                    }
                    None => row.push("n/a".into()),
                }
            }
            t.row(row);
        }
        t.note(
            "paper: a small scratchpad caps ILP; bigger buffers unlock it until cache ports bind",
        );
        t
    }

    /// Figure 4.9: working-set size vs DRAM traffic (pathfinder scaled to
    /// 1/2x, 1x, 4x of the 32 KB cache).
    fn fig4_9(&mut self) -> Table {
        let mut t = Table::new(
            "Fig 4.9 — tape working set vs DRAM traffic per access (pathfinder)",
            &[
                "tape/cache",
                "tape bytes",
                "enzyme dram/acc",
                "tflow dram/acc",
                "tflow/enzyme",
            ],
        );
        for (label, spec) in fig4_9_grids() {
            let p = match self.variant_mut(spec) {
                Ok(p) => p,
                Err(e) => {
                    t.note(format!("{label}: skipped ({e})"));
                    continue;
                }
            };
            let tape_bytes = p.grad.tape_elems() * 8;
            let ez = p.sim(&E32K, false).clone();
            let tf = p.sim(&t_cfg(32768), false).clone();
            // Steady-state traffic: exclude the one-time cool-down flush,
            // which charges every resident dirty line regardless of grid
            // size and would mask the crossover the figure is about.
            let ez_line = sys_for(&E32K).cache.line_bytes as u64;
            let tf_line = sys_for(&t_cfg(32768)).cache.line_bytes as u64;
            let ez_total = (ez.cache.accesses() + ez.spad_accesses).max(1);
            let tf_total = (tf.cache.accesses() + tf.spad_accesses).max(1);
            let ez_norm =
                (ez.dram_bytes() - ez.cache.flush_writebacks * ez_line) as f64 / ez_total as f64;
            let tf_norm =
                (tf.dram_bytes() - tf.cache.flush_writebacks * tf_line) as f64 / tf_total as f64;
            t.row(vec![
                label.into(),
                kib(tape_bytes),
                format!("{ez_norm:.2}"),
                format!("{tf_norm:.2}"),
                format!("{:.2}", tf_norm / ez_norm),
            ]);
        }
        t.note("paper: the cache wins on small inputs it fully captures; Tapeflow wins once the tape overflows it");
        t
    }

    /// Figure 4.10: shallow vs deep layer graphs via the unroll factor
    /// (pathfinder).
    fn fig4_10(&mut self) -> Table {
        let mut t = Table::new(
            "Fig 4.10 — pathfinder: unroll factor vs speedup and per-layer parallelism",
            &[
                "unroll",
                "speedup vs Enzyme_32k",
                "norm speedup",
                "ops/layer",
                "norm ops/layer",
            ],
        );
        let mut first: Option<(f64, f64)> = None;
        for u in [1u64, 2, 4, 8] {
            let spec = VariantSpec::Unrolled {
                bench: "pathfinder",
                loop_name: "c",
                factor: u,
            };
            let p = match self.variant_mut(spec) {
                Ok(p) => p,
                Err(e) => {
                    t.note(format!("u{u}: skipped ({e})"));
                    continue;
                }
            };
            let ez = p.sim(&E32K, false).cycles.max(1) as f64;
            let cfg = t_cfg(32768);
            let layers = p.compiled(&cfg).stats.fwd_layers.max(1);
            let tf = p.sim(&cfg, false).clone();
            let speedup = ez / tf.cycles.max(1) as f64;
            let ops_per_layer = (tf.fp_ops + tf.int_ops) as f64 / (2 * layers) as f64;
            let (s0, o0) = *first.get_or_insert((speedup, ops_per_layer));
            t.row(vec![
                format!("u{u}"),
                ratio(speedup),
                format!("{:.2}", speedup / s0),
                format!("{ops_per_layer:.0}"),
                format!("{:.2}", ops_per_layer / o0),
            ]);
        }
        t.note(
            "paper: shallow graphs with wider layers gain up to 2x from more per-layer parallelism",
        );
        t
    }
}

impl Lab {
    /// DESIGN.md's ablations: tape policy, double buffering, replacement
    /// policy.
    fn ablations(&mut self) -> Vec<Table> {
        use tapeflow_autodiff::TapePolicy;
        // (a) Tape policies: tape bytes per policy.
        let mut pol = Table::new(
            "Ablation A — tape policy vs tape size (bytes)",
            &["bench", "Minimal", "Conservative (default)", "All"],
        );
        // Re-differentiating under three policies is the expensive part;
        // it is read-only on `Prepared`, so fan it out per benchmark.
        let all_sizes: Vec<Vec<String>> = pool::map_parallel(&self.prepared, self.jobs, |_, p| {
            [
                TapePolicy::Minimal,
                TapePolicy::Conservative,
                TapePolicy::All,
            ]
            .into_iter()
            .map(|pl| p.bench.gradient_with(pl).stats.tape_bytes.to_string())
            .collect()
        });
        for (p, sizes) in self.prepared.iter().zip(all_sizes) {
            let mut row = vec![p.bench.name.to_string()];
            row.extend(sizes);
            pol.row(row);
        }
        pol.note("Minimal = ideal aliasing (reload inputs); All = operator overloading");

        // (b) Double buffering on/off at the baseline scratchpad.
        let mut db = Table::new(
            "Ablation B — double buffering (cycles, Tflow_32k)",
            &[
                "bench",
                "double-buffered",
                "single-buffered",
                "single/double",
            ],
        );
        for p in &mut self.prepared {
            let on = p.sim(&t_cfg(32768), false).cycles;
            let off_cfg = Config::Tapeflow {
                cache_bytes: 32768,
                spad_bytes: 1024,
                double_buffer: false,
                compress: false,
            };
            let off = match p.try_sim(&off_cfg, false) {
                Some(r) => r.cycles,
                None => {
                    db.row(vec![
                        p.bench.name.into(),
                        on.to_string(),
                        "n/a".into(),
                        "".into(),
                    ]);
                    continue;
                }
            };
            db.row(vec![
                p.bench.name.into(),
                on.to_string(),
                off.to_string(),
                format!("{:.2}", off as f64 / on as f64),
            ]);
        }
        db.note("single buffering doubles the tile but blocks stream/compute overlap");

        // (c) Replacement policy on the Enzyme baseline (Obs 1.3). Goes
        // through the memo — which keys on the full system configuration,
        // so the FIFO run cannot alias the LRU one — and therefore
        // benefits from the parallel warm-up like everything else.
        let mut rp = Table::new(
            "Ablation C — baseline cache replacement policy (cycles, 8k cache)",
            &["bench", "LRU", "FIFO", "FIFO/LRU"],
        );
        for p in &mut self.prepared {
            let mut cycles = Vec::new();
            for policy in [ReplacementPolicy::Lru, ReplacementPolicy::Fifo] {
                let mut sys = SystemConfig::with_cache_bytes(8192);
                sys.cache.policy = policy;
                cycles.push(
                    p.try_sim_with(&Config::enzyme(8192), &sys, false)
                        .expect("enzyme configs always trace")
                        .cycles,
                );
            }
            rp.row(vec![
                p.bench.name.into(),
                cycles[0].to_string(),
                cycles[1].to_string(),
                format!("{:.2}", cycles[1] as f64 / cycles[0] as f64),
            ]);
        }
        rp.note("no policy choice rescues the cache from tape traffic (paper Obs 1.3)");

        // (d) Pass 5 tape compression: delta/width-narrowed tape slots
        // vs the uncompressed build at the paper-baseline configuration.
        let mut tc = Table::new(
            "Ablation D — tape compression (Pass 5, Tflow_32k vs TflowC_32k)",
            &[
                "bench",
                "tape bytes",
                "compressed",
                "elided",
                "narrowed",
                "dram bytes",
                "dram (compressed)",
                "traffic ratio",
            ],
        );
        for p in &mut self.prepared {
            let on_cfg = Config::tapeflow_compressed(32768);
            if !p.ensure_program(&on_cfg) {
                tc.row(vec![p.bench.name.into(), "n/a".into()]);
                continue;
            }
            let enc = p.compiled(&on_cfg).encoding.clone();
            let off = p.sim(&t_cfg(32768), false).dram_bytes();
            let on = p.sim(&on_cfg, false).dram_bytes();
            let (before, after, elided, narrowed) = enc
                .map(|e| {
                    (
                        e.bytes_before,
                        e.bytes_after,
                        e.elided_slots,
                        e.narrowed_slots,
                    )
                })
                .unwrap_or_default();
            tc.row(vec![
                p.bench.name.into(),
                before.to_string(),
                after.to_string(),
                elided.to_string(),
                narrowed.to_string(),
                off.to_string(),
                on.to_string(),
                format!("{:.2}", on as f64 / off.max(1) as f64),
            ]);
        }
        tc.note(
            "input-copy slots rematerialize from REV ordinals; slots with a proven \
             integer or quantized-float range (seeded by declared input ranges, \
             re-proved by value-range analysis) narrow to 1-4 B",
        );
        vec![pol, db, rp, tc]
    }

    /// The canonical per-benchmark configuration sweep reported in the
    /// machine-readable results document (and timed by
    /// [`crate::hostperf`], so the host-throughput numbers describe the
    /// sweep CI actually regenerates).
    pub fn json_configs() -> Vec<Config> {
        vec![
            Config::enzyme(1024),
            Config::enzyme(2048),
            Config::enzyme(8192),
            Config::enzyme(32768),
            Config::enzyme(131072),
            t_cfg(1024),
            t_cfg(2048),
            t_cfg(32768),
            Config::tapeflow_compressed(32768),
            Config::AosOnCache { cache_bytes: 4096 },
        ]
    }

    /// Machine-readable results: every benchmark simulated under the
    /// canonical configuration sweep (cycles, hit rates, DRAM traffic,
    /// energy — see [`tapeflow_sim::SimReport::to_json`]). The sweep is
    /// warmed through the parallel pool first; the document itself is
    /// assembled serially in registry order, so its bytes are identical
    /// for any job count.
    pub fn json_report(&mut self) -> Value {
        self.json_report_with(false, false)
    }

    /// [`Lab::json_report`], optionally folding a per-cause stall
    /// breakdown into every feasible configuration entry (`stalls` key,
    /// [`tapeflow_sim::CycleBreakdown::summary_json`]). Breakdowns are a
    /// pure function of the trace and system configuration — all cycle
    /// counters, no wall clock — so the document stays byte-identical
    /// at any `--jobs` count with no `--stable-json` scrubbing.
    ///
    /// `hot_spots` additionally folds the per-benchmark source-level
    /// hot-spot rows (`hot_spots` key, [`crate::attr::rows_json`] of the
    /// [`HOT_SPOT_TOP`] heaviest instructions) into every feasible
    /// entry — also pure cycle counters joined against static IR, so
    /// equally byte-stable.
    pub fn json_report_with(&mut self, stalls: bool, hot_spots: bool) -> Value {
        let configs = Self::json_configs();
        let items: Vec<SimItem> = configs.iter().map(|c| std_item(*c, false)).collect();
        self.warm_items(&WarmPlan {
            prep: vec![],
            items,
            variants: vec![],
        });
        // Stall breakdowns and hot spots re-run each simulation under
        // the attribution probe; prepare every program (warm_items is a
        // no-op with one job), fan the probed runs out over read-only
        // state like the warm-up, and look them up during the serial
        // assembly below.
        let work: Vec<(usize, usize)> = (0..self.prepared.len())
            .flat_map(|bi| (0..configs.len()).map(move |ci| (bi, ci)))
            .collect();
        if stalls || hot_spots {
            for p in &mut self.prepared {
                for c in &configs {
                    let _ = p.ensure_program(c);
                }
            }
        }
        let breakdowns = if stalls {
            let prepared = &self.prepared;
            pool::map_parallel(&work, self.jobs, |_, &(bi, ci)| {
                prepared[bi].stall_breakdown(&configs[ci], &sys_for(&configs[ci]))
            })
        } else {
            Vec::new()
        };
        let spots = if hot_spots {
            let prepared = &self.prepared;
            pool::map_parallel(&work, self.jobs, |_, &(bi, ci)| {
                prepared[bi].hot_spots(&configs[ci], &sys_for(&configs[ci]), HOT_SPOT_TOP)
            })
        } else {
            Vec::new()
        };
        let mut benches = Vec::new();
        for (bi, p) in self.prepared.iter_mut().enumerate() {
            let mut per_config = Vec::new();
            for (ci, c) in configs.iter().enumerate() {
                let mut entry = Value::object();
                entry.set("config", c.label());
                match p.try_sim(c, false) {
                    Some(r) => {
                        entry.set("feasible", true);
                        entry.set("report", r.to_json());
                        if stalls {
                            if let Some(bd) = &breakdowns[bi * configs.len() + ci] {
                                entry.set("stalls", bd.summary_json());
                            }
                        }
                        if hot_spots {
                            if let Some(rows) = &spots[bi * configs.len() + ci] {
                                entry.set(
                                    "hot_spots",
                                    Value::Arr(crate::attr::rows_json(rows, HOT_SPOT_TOP)),
                                );
                            }
                        }
                    }
                    None => {
                        entry.set("feasible", false);
                    }
                }
                per_config.push(entry);
            }
            let mut b = Value::object();
            b.set("name", p.bench.name)
                .set("tape_elems", p.grad.tape_elems())
                .set("compression", compression_json(p))
                .set("lint", lint_json(p))
                .set("configs", Value::Arr(per_config));
            benches.push(b);
        }
        let mut doc = Value::object();
        doc.set("scale", format!("{:?}", self.scale))
            .set("benchmarks", Value::Arr(benches));
        doc
    }

    /// Aggregate per-pass compile wall time across every prepared
    /// benchmark and variant: pass name → (runs, total wall). Key order
    /// is deterministic (BTreeMap); the times themselves are wall clock
    /// and must stay out of result bytes (the experiments binary zeroes
    /// them under `--stable-json`).
    pub fn pass_wall_totals(&self) -> BTreeMap<&'static str, (u64, Duration)> {
        let mut out: BTreeMap<&'static str, (u64, Duration)> = BTreeMap::new();
        let states = self
            .prepared
            .iter()
            .chain(self.variants.iter().filter_map(|(_, r)| r.as_ref().ok()));
        for p in states {
            for (name, (runs, wall)) in p.pass_wall() {
                let slot = out.entry(name).or_insert((0, Duration::ZERO));
                slot.0 += *runs;
                slot.1 += *wall;
            }
        }
        out
    }
}

/// What Pass 5 (`tape-compress`) does to the benchmark's tape at the
/// `TflowC_32k` configuration; `feasible: false` when that build cannot
/// compile.
fn compression_json(p: &mut Prepared) -> Value {
    let mut o = Value::object();
    let cfg = Config::tapeflow_compressed(32768);
    if !p.ensure_program(&cfg) {
        o.set("feasible", false);
        return o;
    }
    o.set("feasible", true);
    match &p.compiled(&cfg).encoding {
        Some(e) => {
            o.set("elided_slots", e.elided_slots)
                .set("narrowed_slots", e.narrowed_slots)
                .set("tape_bytes_before", e.bytes_before)
                .set("tape_bytes_after", e.bytes_after);
        }
        None => {
            o.set("elided_slots", 0usize)
                .set("narrowed_slots", 0usize)
                .set("tape_bytes_before", 0u64)
                .set("tape_bytes_after", 0u64);
        }
    }
    o
}

/// Lint summary for the paper-baseline compilation: error/warning counts
/// plus a per-rule breakdown, deterministically ordered by rule name.
/// `feasible: false` when the 1 KB baseline cannot compile the benchmark.
fn lint_json(p: &mut Prepared) -> Value {
    let mut o = Value::object();
    match p.lint_findings() {
        Some(diags) => {
            let (errors, warnings) = tapeflow_ir::lint::counts(&diags);
            o.set("feasible", true)
                .set("errors", errors)
                .set("warnings", warnings);
            let mut rules: BTreeMap<&'static str, usize> = BTreeMap::new();
            for d in &diags {
                *rules.entry(d.rule).or_insert(0) += 1;
            }
            let mut rv = Value::object();
            for (rule, n) in rules {
                rv.set(rule, n);
            }
            o.set("rules", rv);
        }
        None => {
            o.set("feasible", false);
        }
    }
    o
}

/// Table 2.1: the qualitative framework comparison (static).
fn table2_1() -> Table {
    let mut t = Table::new(
        "Table 2.1 — Tapeflow vs SOTA frameworks (qualitative, from the paper)",
        &[
            "axis",
            "DNN training",
            "DSLs",
            "Diff. libraries",
            "Enzyme",
            "Tapeflow",
        ],
    );
    let rows: [[&str; 6]; 8] = [
        [
            "domain",
            "DNNs/ML",
            "physics/img",
            "dataflow",
            "general",
            "general",
        ],
        [
            "operators",
            "fixed kernels",
            "arbitrary",
            "lib-specific",
            "arbitrary",
            "arbitrary",
        ],
        [
            "access flexibility",
            "low",
            "high",
            "FIFO-only",
            "high",
            "high",
        ],
        [
            "tape allocation",
            "compiler",
            "user",
            "compiler",
            "compiler",
            "compiler",
        ],
        [
            "alloc granularity",
            "tensor",
            "array",
            "element",
            "array",
            "regions",
        ],
        [
            "tape orchestration",
            "varies",
            "implicit",
            "implicit",
            "implicit",
            "explicit",
        ],
        [
            "tape layout",
            "tensors (SoA)",
            "SoA",
            "FIFO",
            "arrays (SoA)",
            "struct (AoS)",
        ],
        [
            "memory hierarchy",
            "flexible",
            "cache",
            "cache",
            "cache",
            "scratchpad",
        ],
    ];
    for r in rows {
        t.row(r.iter().map(|s| s.to_string()).collect());
    }
    t
}

/// Table 4.2: the simulated system configuration.
fn table4_2() -> Table {
    let cfg = SystemConfig::baseline_32k();
    let mut t = Table::new(
        "Table 4.2 — system configuration",
        &["component", "setting"],
    );
    t.row(vec![
        "datapath".into(),
        format!(
            "16 PEs (dual FPU): {} fp/cyc, {} int/cyc; lat alu {} mul {} long {}",
            cfg.pe.fp_issue,
            cfg.pe.int_issue,
            cfg.pe.fp_alu_latency,
            cfg.pe.fp_mul_latency,
            cfg.pe.fp_long_latency
        ),
    ]);
    t.row(vec![
        "cache (baseline)".into(),
        format!(
            "{} KB, {}-way, {} B lines, {} ports, {} MSHRs, hit {} cyc",
            cfg.cache.size_bytes / 1024,
            cfg.cache.assoc,
            cfg.cache.line_bytes,
            cfg.cache.ports,
            cfg.cache.mshrs,
            cfg.cache.hit_latency
        ),
    ]);
    t.row(vec![
        "scratchpad".into(),
        format!(
            "1 KB: {} banks, latency {} cyc",
            cfg.spad.banks, cfg.spad.latency
        ),
    ]);
    t.row(vec![
        "dram".into(),
        format!(
            "{} B/cyc (19.2 GB/s @ 2 GHz), latency {} cyc",
            cfg.dram.bytes_per_cycle, cfg.dram.latency
        ),
    ]);
    let sizes = [1024, 2048, 4096, 8192, 16384, 32768, 65536, 131072];
    let energies: Vec<String> = sizes
        .iter()
        .map(|&s| format!("{}k:{:.0}", s / 1024, EnergyTable::cache_pj(s)))
        .collect();
    t.row(vec!["cache energy (pJ/access)".into(), energies.join(" ")]);
    t.row(vec![
        "spad/stream/dram energy".into(),
        format!(
            "{:.0} pJ/entry, {:.0} pJ/elem, {:.0} pJ/B",
            cfg.energy.spad_pj, cfg.energy.stream_elem_pj, cfg.energy.dram_pj_per_byte
        ),
    ]);
    t
}

/// Max distinct arrays touched by any single loop body (Table 4.1's
/// tensors-per-loop column).
fn max_arrays_per_loop(b: &Benchmark) -> usize {
    use tapeflow_ir::{Op, Stmt};
    fn arrays_in(
        func: &tapeflow_ir::Function,
        stmts: &[Stmt],
        set: &mut Vec<tapeflow_ir::ArrayId>,
    ) {
        for s in stmts {
            match s {
                Stmt::Inst(i) => {
                    if let Op::Load(a) | Op::Store(a) = func.inst(*i).op {
                        if !set.contains(&a) {
                            set.push(a);
                        }
                    }
                }
                Stmt::For { body, .. } => arrays_in(func, body, set),
            }
        }
    }
    fn walk(func: &tapeflow_ir::Function, stmts: &[Stmt], best: &mut usize) {
        for s in stmts {
            if let Stmt::For { body, .. } = s {
                let mut set = Vec::new();
                arrays_in(func, body, &mut set);
                *best = (*best).max(set.len());
                walk(func, body, best);
            }
        }
    }
    let mut best = 0;
    walk(&b.func, &b.func.body, &mut best);
    best
}

fn pathfinder_sized(rows: usize, cols: usize) -> Benchmark {
    tapeflow_benchmarks::pathfinder_sized(rows, cols)
}

/// Fig 4.9's grid sweep: pathfinder scaled so the tape working set is
/// ~0.5x / 1x / 4x of the 32 KB cache (~5 tape slots per grid cell at
/// 8 B each; see pathfinder docs).
fn fig4_9_grids() -> [(&'static str, VariantSpec); 3] {
    [
        ("0.5x", 16 * 1024 / 40),
        ("1x", 32 * 1024 / 40),
        ("4x", 131072 / 40),
    ]
    .map(|(label, cells)| {
        let rows = (cells as f64).sqrt() as usize;
        let cols = cells / rows.max(1);
        (
            label,
            VariantSpec::PathfinderSized {
                rows: rows.max(2),
                cols: cols.max(4),
            },
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_experiment_runs_at_tiny_scale() {
        let mut lab = Lab::new(Scale::Tiny);
        for id in IDS {
            let tables = lab.run(id);
            assert!(!tables.is_empty(), "{id}");
            for t in tables {
                let text = t.render();
                assert!(text.contains("=="), "{id}");
            }
        }
    }

    #[test]
    fn arrays_per_loop_counts() {
        let b = by_name("matdescent", Scale::Tiny);
        // inner loop touches A, x and the row cell; outer adds b and loss.
        assert!(max_arrays_per_loop(&b) >= 3);
    }
}
