//! Source-level hot-spot resolution: joining a per-instruction cycle
//! breakdown ([`tapeflow_sim::InstBreakdown`]) against the simulated
//! function's IR and provenance records.
//!
//! The probe layer only knows trace nodes and instruction indices; this
//! module turns those into rows a person can read — which *source* op
//! (via the [`tapeflow_ir::Provenance`] chain the passes maintain), in
//! which tape region and layer, behind which rewrite — and renders them
//! as a hot-spot table, collapsed-stack flamegraph lines
//! (`frames... count`, loadable in speedscope / inferno / flamegraph.pl)
//! and machine-readable JSON. Shared by `tapeflow profile --by-inst` and
//! `experiments --hot-spots`.

use std::collections::BTreeMap;
use tapeflow_ir::{ArrayKind, Function, Op, Trace};
use tapeflow_sim::json::Value;
use tapeflow_sim::{InstBreakdown, StallKind};

/// Number of attribution causes (mirrors `StallKind::ALL`).
const KINDS: usize = StallKind::ALL.len();

/// One resolved per-instruction attribution row.
#[derive(Clone, Debug)]
pub struct InstAttr {
    /// Instruction index in the simulated function; `None` for the
    /// probe's unattributed residue (cycles no instruction carries).
    pub inst: Option<usize>,
    /// Label of the instruction's own op (`tape.load`, `fmul`, ...).
    pub op: String,
    /// Originating source-level instruction, when provenance carries one.
    pub source_inst: Option<usize>,
    /// Label of that source op, resolved in the source function.
    pub source_op: Option<String>,
    /// Tape region the instruction was placed in.
    pub region: Option<u32>,
    /// Layer / segment within the region.
    pub layer: Option<u32>,
    /// Pass that created the instruction (`"source"`, `"ad"`, ...).
    pub created_by: &'static str,
    /// Last structural rewrite recorded on the provenance chain.
    pub rewritten_by: Option<&'static str>,
    /// PE-cycles per cause, in [`StallKind::ALL`] order.
    pub units: [u64; KINDS],
    /// Total PE-cycles charged to this instruction.
    pub total: u64,
}

impl InstAttr {
    /// The cause this row spends most PE-cycles on (ties resolve to the
    /// higher-priority cause, i.e. earlier in [`StallKind::ALL`]).
    pub fn top_kind(&self) -> StallKind {
        let mut best = 0;
        for (ki, &u) in self.units.iter().enumerate() {
            if u > self.units[best] {
                best = ki;
            }
        }
        StallKind::ALL[best]
    }

    /// PE-cycles charged to `kind`.
    pub fn get(&self, kind: StallKind) -> u64 {
        self.units[StallKind::ALL.iter().position(|k| *k == kind).unwrap()]
    }
}

/// The trace-node → instruction back-map [`tapeflow_sim::AttributionProbe::with_inst_map`]
/// consumes: node `n` executed instruction `map[n]`.
pub fn node_to_inst(trace: &Trace) -> Vec<u32> {
    trace
        .nodes()
        .iter()
        .map(|n| n.inst.index() as u32)
        .collect()
}

/// A short human label for `op` in `f`: cache-backed tape accesses (the
/// Enzyme baseline's `load`/`store` on [`ArrayKind::Tape`] arrays) and
/// the lowered `tape.*` ops all read as `tape.load`/`tape.store`; other
/// array accesses name their array; everything else is the bare
/// mnemonic.
pub fn op_label(f: &Function, op: &Op) -> String {
    match op {
        Op::Load(a) | Op::Store(a) => {
            let d = f.array(*a);
            let what = if matches!(op, Op::Load(_)) {
                "load"
            } else {
                "store"
            };
            if d.kind == ArrayKind::Tape {
                format!("tape.{what}")
            } else {
                format!("{what} {}", d.name)
            }
        }
        Op::TapeLoad { .. } => "tape.load".into(),
        Op::TapeStore { .. } => "tape.store".into(),
        other => other
            .mnemonic()
            .split_whitespace()
            .next()
            .unwrap_or("?")
            .to_string(),
    }
}

/// Joins `bd` against `func`'s IR and provenance into resolved rows,
/// sorted by descending PE-cycles (ties by instruction index, the
/// unattributed row last). Zero rows are dropped. `source` is the
/// function provenance `source` ids index into (the pass chain's
/// starting function); rows whose provenance says `created_by ==
/// "source"` self-reference `func` instead.
pub fn resolve(func: &Function, source: Option<&Function>, bd: &InstBreakdown) -> Vec<InstAttr> {
    let n = bd.insts();
    let mut rows = Vec::new();
    for (i, units) in bd.rows.iter().enumerate() {
        let total: u64 = units.iter().sum();
        if total == 0 {
            continue;
        }
        if i >= n || i >= func.insts().len() {
            rows.push(InstAttr {
                inst: None,
                op: "(unattributed)".into(),
                source_inst: None,
                source_op: None,
                region: None,
                layer: None,
                created_by: "",
                rewritten_by: None,
                units: *units,
                total,
            });
            continue;
        }
        let p = func.provs()[i];
        let sf = if p.created_by == "source" {
            Some(func)
        } else {
            source
        };
        let source_op = p.source.and_then(|sid| {
            sf.and_then(|sf| sf.insts().get(sid.index()))
                .map(|inst| op_label(sf.unwrap(), &inst.op))
        });
        rows.push(InstAttr {
            inst: Some(i),
            op: op_label(func, &func.insts()[i].op),
            source_inst: p.source.map(|s| s.index()),
            source_op,
            region: p.region,
            layer: p.layer,
            created_by: p.created_by,
            rewritten_by: p.rewritten_by,
            units: *units,
            total,
        });
    }
    rows.sort_by(|a, b| {
        b.total.cmp(&a.total).then_with(|| {
            a.inst
                .unwrap_or(usize::MAX)
                .cmp(&b.inst.unwrap_or(usize::MAX))
        })
    });
    rows
}

/// The hot-spot table: the `top` heaviest rows of `rows`, with their
/// share of `budget` (the breakdown's `cycles * PEs`), the tape-miss
/// share, and the dominant cause.
pub fn render_hot_spots(label: &str, rows: &[InstAttr], budget: u64, top: usize) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let shown = rows.len().min(top);
    let _ = writeln!(
        out,
        "=== hot spots: {label} (top {shown} of {} rows, PE-cycles) ===",
        rows.len()
    );
    let _ = writeln!(
        out,
        "{:<5} {:<6} {:<4} {:<4} {:<18} {:<14} {:>12} {:>7} {:>10}  top cause",
        "rank", "inst", "rgn", "lyr", "source", "op", "PE-cycles", "%", "tape-miss"
    );
    for (rank, r) in rows.iter().take(top).enumerate() {
        let inst = r.inst.map_or("-".into(), |i| format!("i{i}"));
        let rgn = r.region.map_or("-".into(), |x| format!("R{x}"));
        let lyr = r.layer.map_or("-".into(), |x| format!("L{x}"));
        let src = r.source_op.as_deref().unwrap_or("-");
        let pct = if budget == 0 {
            0.0
        } else {
            r.total as f64 / budget as f64 * 100.0
        };
        let tape = r.get(StallKind::TapeMissStall);
        let top_kind = r.top_kind();
        let share = r.get(top_kind) as f64 / r.total as f64 * 100.0;
        let _ = writeln!(
            out,
            "{:<5} {inst:<6} {rgn:<4} {lyr:<4} {src:<18} {:<14} {:>12} {pct:>6.1}% {tape:>10}  {} ({share:.0}%)",
            rank + 1,
            r.op,
            r.total,
            top_kind.label(),
        );
    }
    out
}

/// A frame component must not contain the collapsed-stack separators.
fn frame(s: &str) -> String {
    s.replace([' ', ';'], "_")
}

/// Collapsed-stack flamegraph lines (`root;Rr;Ll;source;op count`),
/// aggregated over `rows` and sorted for byte-stable output. Unknown
/// region/layer render as `R*`/`L*`.
pub fn flame_lines(root: &str, rows: &[InstAttr]) -> Vec<String> {
    let mut agg: BTreeMap<String, u64> = BTreeMap::new();
    for r in rows {
        let rgn = r.region.map_or("R*".into(), |x| format!("R{x}"));
        let lyr = r.layer.map_or("L*".into(), |x| format!("L{x}"));
        let src = frame(r.source_op.as_deref().unwrap_or("-"));
        let stack = format!("{};{rgn};{lyr};{src};{}", frame(root), frame(&r.op));
        *agg.entry(stack).or_insert(0) += r.total;
    }
    agg.into_iter().map(|(k, v)| format!("{k} {v}")).collect()
}

/// The `top` heaviest rows as JSON objects (schema: the per-inst section
/// of `tapeflow.cli.profile/v2`). Zero-valued causes are omitted from
/// each row's `stalls` object.
pub fn rows_json(rows: &[InstAttr], top: usize) -> Vec<Value> {
    rows.iter()
        .take(top)
        .map(|r| {
            let mut o = Value::object();
            o.set("inst", r.inst.map_or(Value::Null, Value::from))
                .set("op", r.op.as_str())
                .set(
                    "source_inst",
                    r.source_inst.map_or(Value::Null, Value::from),
                )
                .set(
                    "source_op",
                    r.source_op.as_deref().map_or(Value::Null, Value::from),
                )
                .set(
                    "region",
                    r.region.map_or(Value::Null, |x| Value::from(x as u64)),
                )
                .set(
                    "layer",
                    r.layer.map_or(Value::Null, |x| Value::from(x as u64)),
                )
                .set("created_by", r.created_by)
                .set(
                    "rewritten_by",
                    r.rewritten_by.map_or(Value::Null, Value::from),
                )
                .set("total_pe_cycles", r.total);
            let mut s = Value::object();
            for (ki, k) in StallKind::ALL.iter().enumerate() {
                if r.units[ki] > 0 {
                    s.set(k.key(), r.units[ki]);
                }
            }
            o.set("stalls", s);
            o
        })
        .collect()
}

/// A provenance census of `func`: instruction counts per creating and
/// rewriting pass, plus how many records carry source / region / layer
/// links (the `provenance` section of `tapeflow.cli.profile/v2`).
pub fn provenance_json(func: &Function) -> Value {
    let mut created: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut rewritten: BTreeMap<&'static str, u64> = BTreeMap::new();
    let (mut with_source, mut with_region, mut with_layer) = (0u64, 0u64, 0u64);
    for p in func.provs() {
        *created.entry(p.created_by).or_insert(0) += 1;
        if let Some(rw) = p.rewritten_by {
            *rewritten.entry(rw).or_insert(0) += 1;
        }
        with_source += u64::from(p.source.is_some());
        with_region += u64::from(p.region.is_some());
        with_layer += u64::from(p.layer.is_some());
    }
    let mut c = Value::object();
    for (k, v) in created {
        c.set(k, v);
    }
    let mut rw = Value::object();
    for (k, v) in rewritten {
        rw.set(k, v);
    }
    let mut o = Value::object();
    o.set("insts", func.insts().len())
        .set("created_by", c)
        .set("rewritten_by", rw)
        .set("with_source", with_source)
        .set("with_region", with_region)
        .set("with_layer", with_layer);
    o
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapeflow_ir::trace::{trace_function, TraceOptions};
    use tapeflow_ir::{FunctionBuilder, Memory, Scalar};
    use tapeflow_sim::{simulate_probed, AttributionProbe, SimOptions, SystemConfig};

    fn probed_rows() -> (Function, Vec<InstAttr>, u64) {
        let mut b = FunctionBuilder::new("t");
        let x = b.array("x", 64, ArrayKind::Input, Scalar::F64);
        let y = b.array("y", 64, ArrayKind::Output, Scalar::F64);
        b.for_loop("i", 0, 64, |b, i| {
            let xi = b.load(x, i);
            let e = b.exp(xi);
            b.store(y, i, e);
        });
        let f = b.finish();
        let mut mem = Memory::for_function(&f);
        mem.set_f64(x, &vec![0.5; 64]);
        let trace = trace_function(&f, &mut mem, TraceOptions::default()).unwrap();
        let map = node_to_inst(&trace);
        let mut probe = AttributionProbe::with_inst_map(map, f.insts().len());
        simulate_probed(
            &trace,
            &SystemConfig::with_cache_bytes(1024),
            &SimOptions::default(),
            &mut probe,
        );
        let (bd, inst_bd) = probe.into_parts();
        let rows = resolve(&f, None, &inst_bd.unwrap());
        (f, rows, bd.total_units())
    }

    #[test]
    fn resolve_names_source_ops_and_orders_by_weight() {
        let (_, rows, budget) = probed_rows();
        assert!(!rows.is_empty());
        assert!(rows.windows(2).all(|w| w[0].total >= w[1].total));
        // Source IR self-stamps: every attributed inst resolves a source op.
        for r in rows.iter().filter(|r| r.inst.is_some()) {
            assert_eq!(r.created_by, "source");
            assert!(r.source_op.is_some(), "row {:?} lost its source", r.inst);
        }
        assert!(rows.iter().any(|r| r.op.starts_with("load ")));
        let total: u64 = rows.iter().map(|r| r.total).sum();
        assert_eq!(total, budget, "rows partition the attribution budget");
    }

    #[test]
    fn flame_lines_are_wellformed_and_conserve_cycles() {
        let (_, rows, budget) = probed_rows();
        let lines = flame_lines("Test", &rows);
        assert!(!lines.is_empty());
        let mut sum = 0u64;
        for l in &lines {
            let (stack, count) = l.rsplit_once(' ').expect("count separator");
            assert_eq!(stack.split(';').count(), 5, "frame depth in {l:?}");
            assert!(stack.split(';').all(|f| !f.is_empty() && !f.contains(' ')));
            sum += count.parse::<u64>().expect("numeric count");
        }
        assert_eq!(sum, budget);
    }

    #[test]
    fn hot_spot_table_and_json_cover_top_rows() {
        let (f, rows, budget) = probed_rows();
        let table = render_hot_spots("Test", &rows, budget, 3);
        assert!(table.contains("hot spots: Test"));
        assert!(table.lines().count() <= 2 + 3);
        let js = rows_json(&rows, 3);
        assert!(js.len() <= 3);
        assert!(js[0].get("stalls").is_some());
        let census = provenance_json(&f);
        assert_eq!(
            census.get("insts").and_then(Value::as_u64),
            Some(f.insts().len() as u64)
        );
    }
}
