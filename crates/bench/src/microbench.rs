//! Minimal std-only micro-benchmark runner.
//!
//! A stand-in for `criterion` (which the build environment cannot fetch):
//! each benchmark is warmed up once, timed for a fixed number of samples,
//! and reported as min/median/mean wall-clock per iteration. Results are
//! printed to stdout in a stable `group/name  min  median  mean` format so
//! runs can be diffed.

use std::time::{Duration, Instant};

/// A named group of timed benchmarks.
#[derive(Debug)]
pub struct Group {
    name: String,
    samples: usize,
}

impl Group {
    /// Creates a group; `samples` timed iterations per benchmark.
    pub fn new(name: impl Into<String>, samples: usize) -> Self {
        let name = name.into();
        println!("== {name} ==");
        Group {
            name,
            samples: samples.max(1),
        }
    }

    /// Times `f` for this group's sample count and prints one line.
    pub fn bench<R>(&self, id: impl AsRef<str>, mut f: impl FnMut() -> R) {
        let _ = f(); // warm-up (also forces lazy setup)
        let mut times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let t0 = Instant::now();
                std::hint::black_box(f());
                t0.elapsed()
            })
            .collect();
        times.sort();
        let min = times[0];
        let median = times[times.len() / 2];
        let mean = times.iter().sum::<Duration>() / times.len() as u32;
        println!(
            "{}/{:<24} min {:>12?}  median {:>12?}  mean {:>12?}",
            self.name,
            id.as_ref(),
            min,
            median,
            mean
        );
    }
}
