//! Memoized per-benchmark runners.

use std::collections::HashMap;
use tapeflow_autodiff::Gradient;
use tapeflow_benchmarks::Benchmark;
use tapeflow_core::{compile, CompileMode, CompileOptions, CompiledProgram};
use tapeflow_ir::trace::{trace_function, TraceOptions};
use tapeflow_ir::{ArrayId, Memory, Trace};
use tapeflow_sim::{simulate, SimOptions, SimReport, SystemConfig};

/// One simulated configuration, in the paper's naming scheme.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Config {
    /// `Enzyme_N`: gradient as produced by AD; tape through an N-byte
    /// cache.
    Enzyme {
        /// Cache size in bytes.
        cache_bytes: usize,
    },
    /// `Tflow_N`: full pipeline; tape through scratchpad + streams,
    /// non-tape through an N-byte cache.
    Tapeflow {
        /// Cache size in bytes.
        cache_bytes: usize,
        /// Scratchpad size in bytes (paper baseline 1 KB).
        spad_bytes: usize,
        /// Double-buffered layers.
        double_buffer: bool,
    },
    /// Pass 1 only: array-of-structs layout, still cache-resident
    /// (Figure 4.3).
    AosOnCache {
        /// Cache size in bytes.
        cache_bytes: usize,
    },
}

impl Config {
    /// `Enzyme_N` shorthand.
    pub fn enzyme(cache_bytes: usize) -> Self {
        Config::Enzyme { cache_bytes }
    }

    /// `Tflow_N` shorthand with the paper's 1 KB scratchpad.
    pub fn tapeflow(cache_bytes: usize) -> Self {
        Config::Tapeflow {
            cache_bytes,
            spad_bytes: 1024,
            double_buffer: true,
        }
    }

    /// Display label (`Enzyme_32k`, `Tflow_2k`, ...).
    pub fn label(&self) -> String {
        fn size(b: usize) -> String {
            if b >= 1024 && b.is_multiple_of(1024) {
                format!("{}k", b / 1024)
            } else {
                format!("{b}B")
            }
        }
        match self {
            Config::Enzyme { cache_bytes } => format!("Enzyme_{}", size(*cache_bytes)),
            Config::Tapeflow { cache_bytes, .. } => format!("Tflow_{}", size(*cache_bytes)),
            Config::AosOnCache { cache_bytes } => format!("AoS_{}", size(*cache_bytes)),
        }
    }

    fn cache_bytes(&self) -> usize {
        match self {
            Config::Enzyme { cache_bytes }
            | Config::Tapeflow { cache_bytes, .. }
            | Config::AosOnCache { cache_bytes } => *cache_bytes,
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum ProgramKey {
    Gradient,
    Compiled {
        spad_bytes: usize,
        double_buffer: bool,
        aos_only: bool,
    },
}

/// A benchmark prepared for repeated simulation: the gradient is computed
/// once, compiled programs and traces are memoized per configuration.
pub struct Prepared {
    /// The benchmark.
    pub bench: Benchmark,
    /// Its gradient (Enzyme-realistic tape policy).
    pub grad: Gradient,
    traces: HashMap<ProgramKey, Trace>,
    compiled: HashMap<ProgramKey, CompiledProgram>,
    sims: HashMap<(ProgramKey, usize, bool), SimReport>,
}

impl std::fmt::Debug for Prepared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Prepared")
            .field("bench", &self.bench.name)
            .finish()
    }
}

impl Prepared {
    /// Prepares a benchmark.
    pub fn new(bench: Benchmark) -> Self {
        let grad = bench.gradient();
        Prepared {
            bench,
            grad,
            traces: HashMap::new(),
            compiled: HashMap::new(),
            sims: HashMap::new(),
        }
    }

    fn key_of(config: &Config) -> ProgramKey {
        match config {
            Config::Enzyme { .. } => ProgramKey::Gradient,
            Config::Tapeflow {
                spad_bytes,
                double_buffer,
                ..
            } => ProgramKey::Compiled {
                spad_bytes: *spad_bytes,
                double_buffer: *double_buffer,
                aos_only: false,
            },
            Config::AosOnCache { .. } => ProgramKey::Compiled {
                spad_bytes: 0,
                double_buffer: false,
                aos_only: true,
            },
        }
    }

    fn try_compiled_for(&mut self, key: ProgramKey) -> Option<&CompiledProgram> {
        if let ProgramKey::Compiled {
            spad_bytes,
            double_buffer,
            aos_only,
        } = key
        {
            if !self.compiled.contains_key(&key) {
                let opts = CompileOptions {
                    spad_entries: (spad_bytes / 8).max(2),
                    double_buffer,
                    mode: if aos_only {
                        CompileMode::AosOnly
                    } else {
                        CompileMode::Full
                    },
                };
                let c = compile(&self.grad, &opts).ok()?;
                self.compiled.insert(key, c);
            }
            Some(&self.compiled[&key])
        } else {
            panic!("gradient key has no compiled program")
        }
    }

    fn compiled_for(&mut self, key: ProgramKey) -> &CompiledProgram {
        let name = self.bench.name;
        self.try_compiled_for(key)
            .unwrap_or_else(|| panic!("{name}: scratchpad too small for this program"))
    }

    /// Trace of the program selected by `config` (memoized); `None` when
    /// the program cannot be compiled for that scratchpad.
    pub fn try_trace(&mut self, config: &Config) -> Option<&Trace> {
        let key = Self::key_of(config);
        if !self.traces.contains_key(&key) {
            let (func, barrier) = match key {
                ProgramKey::Gradient => (self.grad.func.clone(), self.grad.phase_barrier),
                k => {
                    let c = self.try_compiled_for(k)?;
                    (c.func.clone(), c.phase_barrier)
                }
            };
            let mut mem = Memory::for_function(&func);
            for i in 0..self.bench.func.arrays().len() {
                mem.clone_array_from(&self.bench.mem, ArrayId::new(i));
            }
            mem.set_f64_at(
                self.grad.shadow_of(self.bench.loss.array).expect("loss shadow"),
                self.bench.loss.index,
                1.0,
            );
            let t = trace_function(
                &func,
                &mut mem,
                TraceOptions {
                    phase_barrier: Some(barrier),
                },
            )
            .unwrap_or_else(|e| panic!("{}: {e}", self.bench.name));
            self.traces.insert(key, t);
        }
        Some(&self.traces[&key])
    }

    /// Like [`Prepared::try_trace`] but panicking on infeasible configs.
    pub fn trace(&mut self, config: &Config) -> &Trace {
        let name = self.bench.name;
        self.try_trace(config)
            .unwrap_or_else(|| panic!("{name}: scratchpad too small for this program"))
    }

    /// The compiled program behind a Tapeflow/AoS config (memoized).
    ///
    /// # Panics
    ///
    /// Panics when called with an `Enzyme` config.
    pub fn compiled(&mut self, config: &Config) -> &CompiledProgram {
        self.compiled_for(Self::key_of(config))
    }

    /// Simulates under `config` (memoized); `None` when the program cannot
    /// be compiled for that scratchpad. `record_times` additionally stores
    /// per-node finish cycles (needed once per benchmark for the lifetime
    /// figures).
    pub fn try_sim(&mut self, config: &Config, record_times: bool) -> Option<&SimReport> {
        let key = (Self::key_of(config), config.cache_bytes(), record_times);
        if !self.sims.contains_key(&key) {
            self.try_trace(config)?; // ensure memoized
            let trace = &self.traces[&Self::key_of(config)];
            let cfg = SystemConfig::with_cache_bytes(config.cache_bytes());
            let r = simulate(
                trace,
                &cfg,
                &SimOptions {
                    record_node_times: record_times,
                },
            );
            self.sims.insert(key, r);
        }
        Some(&self.sims[&key])
    }

    /// Like [`Prepared::try_sim`] but panicking on infeasible configs.
    pub fn sim(&mut self, config: &Config, record_times: bool) -> &SimReport {
        let name = self.bench.name;
        self.try_sim(config, record_times)
            .unwrap_or_else(|| panic!("{name}: scratchpad too small for this program"))
    }
}

/// Geometric mean of a non-empty slice.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapeflow_benchmarks::{by_name, Scale};

    #[test]
    fn labels() {
        assert_eq!(Config::enzyme(32768).label(), "Enzyme_32k");
        assert_eq!(Config::tapeflow(2048).label(), "Tflow_2k");
        assert_eq!(Config::AosOnCache { cache_bytes: 512 }.label(), "AoS_512B");
    }

    #[test]
    fn memoization_returns_identical_reports() {
        let mut p = Prepared::new(by_name("logsum", Scale::Tiny));
        let a = p.sim(&Config::enzyme(1024), false).cycles;
        let b = p.sim(&Config::enzyme(1024), false).cycles;
        assert_eq!(a, b);
        let t = p.sim(&Config::tapeflow(1024), false).cycles;
        assert!(t > 0);
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!(geomean(&[]).is_nan());
    }
}
