//! Memoized per-benchmark runners.
//!
//! A [`Prepared`] computes the gradient once and memoizes compiled
//! programs, traces and simulation results per configuration. Programs
//! and traces live behind [`Arc`] so they can be shared read-only with
//! worker threads; simulation results are keyed on the *full*
//! [`SystemConfig`] (via [`SystemConfig::fingerprint`]), so sweeps that
//! vary anything beyond the cache size — replacement policy, MSHRs,
//! scratchpad banks — never alias each other's entries.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::Duration;
use tapeflow_autodiff::Gradient;
use tapeflow_benchmarks::Benchmark;
use tapeflow_core::pipeline::PipelineBuilder;
use tapeflow_core::{CompileMode, CompileOptions, CompiledProgram, CoreError};
use tapeflow_ir::trace::{trace_function, TraceOptions};
use tapeflow_ir::{ArrayId, Memory, Trace};
use tapeflow_sim::{
    simulate_prepared, simulate_prepared_probed, AttributionProbe, CycleBreakdown, PreparedSim,
    SimOptions, SimReport, SweepSession, SystemConfig,
};

/// One simulated configuration, in the paper's naming scheme.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Config {
    /// `Enzyme_N`: gradient as produced by AD; tape through an N-byte
    /// cache.
    Enzyme {
        /// Cache size in bytes.
        cache_bytes: usize,
    },
    /// `Tflow_N`: full pipeline; tape through scratchpad + streams,
    /// non-tape through an N-byte cache.
    Tapeflow {
        /// Cache size in bytes.
        cache_bytes: usize,
        /// Scratchpad size in bytes (paper baseline 1 KB).
        spad_bytes: usize,
        /// Double-buffered layers.
        double_buffer: bool,
        /// Run Pass 5 (`tape-compress`) before the terminal lowering.
        compress: bool,
    },
    /// Pass 1 only: array-of-structs layout, still cache-resident
    /// (Figure 4.3).
    AosOnCache {
        /// Cache size in bytes.
        cache_bytes: usize,
    },
}

impl Config {
    /// `Enzyme_N` shorthand.
    pub fn enzyme(cache_bytes: usize) -> Self {
        Config::Enzyme { cache_bytes }
    }

    /// `Tflow_N` shorthand with the paper's 1 KB scratchpad.
    pub fn tapeflow(cache_bytes: usize) -> Self {
        Config::Tapeflow {
            cache_bytes,
            spad_bytes: 1024,
            double_buffer: true,
            compress: false,
        }
    }

    /// `TflowC_N` shorthand: [`Config::tapeflow`] plus Pass 5 tape
    /// compression.
    pub fn tapeflow_compressed(cache_bytes: usize) -> Self {
        Config::Tapeflow {
            cache_bytes,
            spad_bytes: 1024,
            double_buffer: true,
            compress: true,
        }
    }

    /// Display label (`Enzyme_32k`, `Tflow_2k`, ...).
    pub fn label(&self) -> String {
        fn size(b: usize) -> String {
            if b >= 1024 && b.is_multiple_of(1024) {
                format!("{}k", b / 1024)
            } else {
                format!("{b}B")
            }
        }
        match self {
            Config::Enzyme { cache_bytes } => format!("Enzyme_{}", size(*cache_bytes)),
            Config::Tapeflow {
                cache_bytes,
                compress: true,
                ..
            } => format!("TflowC_{}", size(*cache_bytes)),
            Config::Tapeflow { cache_bytes, .. } => format!("Tflow_{}", size(*cache_bytes)),
            Config::AosOnCache { cache_bytes } => format!("AoS_{}", size(*cache_bytes)),
        }
    }

    /// The cache size this configuration simulates with.
    pub fn cache_bytes(&self) -> usize {
        match self {
            Config::Enzyme { cache_bytes }
            | Config::Tapeflow { cache_bytes, .. }
            | Config::AosOnCache { cache_bytes } => *cache_bytes,
        }
    }
}

/// The default system for a configuration: everything from Table 4.2
/// except the cache size, which the configuration picks.
pub fn sys_for(config: &Config) -> SystemConfig {
    SystemConfig::with_cache_bytes(config.cache_bytes())
}

/// Identity of the *program* (and therefore the trace and simulation
/// arena) behind a [`Config`] — the cache size is deliberately absent:
/// every cache ladder over one program shares a single trace. This is
/// the sweep planner's grouping key: configurations with equal trace
/// keys can share one [`SweepSession`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProgramKey {
    /// The raw gradient function (Enzyme baselines).
    Gradient,
    /// A pipeline-compiled program.
    Compiled {
        /// Scratchpad capacity compiled for.
        spad_bytes: usize,
        /// Double-buffered layers.
        double_buffer: bool,
        /// Pass 1 only (AoS layout, cache-resident).
        aos_only: bool,
        /// Pass 5 tape compression.
        compress: bool,
    },
}

/// Simulation memo key: which program, on which full system
/// configuration, with or without node times.
type SimKey = (ProgramKey, u64, bool);

/// A benchmark prepared for repeated simulation: the gradient is computed
/// once, compiled programs and traces are memoized per configuration.
pub struct Prepared {
    /// The benchmark.
    pub bench: Benchmark,
    /// Its gradient (Enzyme-realistic tape policy).
    pub grad: Gradient,
    traces: HashMap<ProgramKey, Arc<Trace>>,
    /// Config-independent simulation arenas (dependence CSR +
    /// struct-of-arrays node metadata), built once per program alongside
    /// its trace. A parameter sweep that only perturbs cache/scratchpad
    /// settings re-simulates from this shared prefix — the per-config
    /// work is just the scheduler loop, keyed by the
    /// [`SystemConfig::fingerprint`] memo below.
    preps: HashMap<ProgramKey, Arc<PreparedSim>>,
    compiled: HashMap<ProgramKey, Arc<CompiledProgram>>,
    /// Programs that failed to compile (scratchpad too small), with the
    /// pipeline's diagnosis; cached so repeated sweeps don't retry the
    /// compilation.
    infeasible: HashMap<ProgramKey, CoreError>,
    /// Accumulated per-pass wall time across every compilation this
    /// benchmark ran (pass name → (runs, total wall)).
    pass_wall: BTreeMap<&'static str, (u64, Duration)>,
    sims: HashMap<SimKey, SimReport>,
    /// Incremental re-simulation state, one session per program (and
    /// per `record_times` flavor, since that changes [`SimOptions`]).
    /// Memo *misses* in [`Prepared::try_sim_with`] run through here, so
    /// a sweep that only perturbs cache parameters replays the previous
    /// run's recorded outcome stream instead of re-simulating from
    /// scratch; reports are identical either way (the session's
    /// contract, enforced by its unit tests and the cross-engine
    /// equivalence suite).
    sessions: HashMap<(ProgramKey, bool), SweepSession>,
}

// Worker threads hold `&Prepared` during the read-only simulation
// fan-out; keep it thread-safe by construction.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Prepared>();
};

impl std::fmt::Debug for Prepared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Prepared")
            .field("bench", &self.bench.name)
            .finish()
    }
}

impl Prepared {
    /// Prepares a benchmark.
    pub fn new(bench: Benchmark) -> Self {
        let grad = bench.gradient();
        Prepared {
            bench,
            grad,
            traces: HashMap::new(),
            preps: HashMap::new(),
            compiled: HashMap::new(),
            infeasible: HashMap::new(),
            pass_wall: BTreeMap::new(),
            sims: HashMap::new(),
            sessions: HashMap::new(),
        }
    }

    fn key_of(config: &Config) -> ProgramKey {
        match config {
            Config::Enzyme { .. } => ProgramKey::Gradient,
            Config::Tapeflow {
                spad_bytes,
                double_buffer,
                compress,
                ..
            } => ProgramKey::Compiled {
                spad_bytes: *spad_bytes,
                double_buffer: *double_buffer,
                aos_only: false,
                compress: *compress,
            },
            Config::AosOnCache { .. } => ProgramKey::Compiled {
                spad_bytes: 0,
                double_buffer: false,
                aos_only: true,
                compress: false,
            },
        }
    }

    fn try_compiled_for(&mut self, key: ProgramKey) -> Result<&CompiledProgram, CoreError> {
        let ProgramKey::Compiled {
            spad_bytes,
            double_buffer,
            aos_only,
            compress,
        } = key
        else {
            // The old code panicked here ("gradient key has no compiled
            // program"); an Enzyme config simply runs `grad.func` as-is.
            return Err(CoreError::Pipeline(
                "Enzyme configurations run the gradient function directly; \
                 no compiled program exists"
                    .into(),
            ));
        };
        if let Some(e) = self.infeasible.get(&key) {
            return Err(e.clone());
        }
        if !self.compiled.contains_key(&key) {
            let opts = CompileOptions {
                spad_entries: (spad_bytes / 8).max(2),
                double_buffer,
                mode: if aos_only {
                    CompileMode::AosOnly
                } else {
                    CompileMode::Full
                },
                compress_tape: compress,
            };
            let run = PipelineBuilder::for_options(&opts).run_gradient(&self.grad);
            let compiled = run.and_then(|run| {
                for r in &run.report.records {
                    let slot = self.pass_wall.entry(r.name).or_insert((0, Duration::ZERO));
                    slot.0 += 1;
                    slot.1 += r.wall;
                }
                run.into_compiled()
            });
            match compiled {
                Ok(c) => {
                    self.compiled.insert(key, Arc::new(c));
                }
                Err(e) => {
                    self.infeasible.insert(key, e.clone());
                    return Err(e);
                }
            }
        }
        Ok(&self.compiled[&key])
    }

    fn compiled_for(&mut self, key: ProgramKey) -> &CompiledProgram {
        let name = self.bench.name;
        self.try_compiled_for(key)
            .unwrap_or_else(|e| panic!("{name}: {e}"))
    }

    /// The trace-identity key behind `config`, memoizing the program,
    /// trace and simulation arena on the way; `None` when the program
    /// cannot be compiled for that scratchpad. Configurations mapping
    /// to the same key simulate the same trace — the sweep planner's
    /// grouping relation.
    pub fn try_trace_key(&mut self, config: &Config) -> Option<ProgramKey> {
        let key = Self::key_of(config);
        if !self.traces.contains_key(&key) {
            let (func, barrier) = match key {
                ProgramKey::Gradient => (self.grad.func.clone(), self.grad.phase_barrier),
                k => {
                    let c = self.try_compiled_for(k).ok()?;
                    (c.func.clone(), c.phase_barrier)
                }
            };
            let mut mem = Memory::for_function(&func);
            for i in 0..self.bench.func.arrays().len() {
                mem.clone_array_from(&self.bench.mem, ArrayId::new(i));
            }
            mem.set_f64_at(
                self.grad
                    .shadow_of(self.bench.loss.array)
                    .expect("loss shadow"),
                self.bench.loss.index,
                1.0,
            );
            let t = trace_function(
                &func,
                &mut mem,
                TraceOptions {
                    phase_barrier: Some(barrier),
                },
            )
            .unwrap_or_else(|e| panic!("{}: {e}", self.bench.name));
            let prep = PreparedSim::new(&t).unwrap_or_else(|e| panic!("{}: {e}", self.bench.name));
            self.traces.insert(key, Arc::new(t));
            self.preps.insert(key, Arc::new(prep));
        }
        Some(key)
    }

    /// Trace of the program selected by `config` (memoized); `None` when
    /// the program cannot be compiled for that scratchpad.
    pub fn try_trace(&mut self, config: &Config) -> Option<&Trace> {
        let key = self.try_trace_key(config)?;
        Some(&self.traces[&key])
    }

    /// Like [`Prepared::try_trace`] but handing out a shared reference,
    /// so callers can keep the trace without a deep clone.
    pub fn try_trace_shared(&mut self, config: &Config) -> Option<Arc<Trace>> {
        let key = self.try_trace_key(config)?;
        Some(Arc::clone(&self.traces[&key]))
    }

    /// The config-independent simulation arena behind `config`
    /// (memoized alongside the trace); `None` when the program cannot be
    /// compiled for that scratchpad. The arena is shared (`Arc`), so a
    /// sweep holds one copy regardless of how many configurations it
    /// simulates.
    pub fn try_prepared_sim(&mut self, config: &Config) -> Option<Arc<PreparedSim>> {
        let key = self.try_trace_key(config)?;
        Some(Arc::clone(&self.preps[&key]))
    }

    /// Like [`Prepared::try_trace`] but panicking on infeasible configs.
    pub fn trace(&mut self, config: &Config) -> &Trace {
        let name = self.bench.name;
        self.try_trace(config)
            .unwrap_or_else(|| panic!("{name}: scratchpad too small for this program"))
    }

    /// The compiled program behind a Tapeflow/AoS config (memoized),
    /// or the [`CoreError`] explaining why there is none — either the
    /// cached infeasibility diagnosis, or a [`CoreError::Pipeline`] for
    /// Enzyme configs (which run the gradient function directly).
    pub fn try_compiled(&mut self, config: &Config) -> Result<&CompiledProgram, CoreError> {
        self.try_compiled_for(Self::key_of(config))
    }

    /// Static lint findings for the paper-baseline Tapeflow compilation
    /// (1 KB scratchpad, double buffered): the function-level rules over
    /// the rewritten program plus the plan-level rules against its layer
    /// plan, merged and canonically sorted. `None` when the baseline is
    /// infeasible for this benchmark. Purely static — no wall clock, no
    /// simulation — so the findings are byte-stable at any job count.
    pub fn lint_findings(&mut self) -> Option<Vec<tapeflow_ir::lint::Diagnostic>> {
        let key = ProgramKey::Compiled {
            spad_bytes: 1024,
            double_buffer: true,
            aos_only: false,
            compress: false,
        };
        self.try_compiled_for(key).ok()?;
        let compiled = Arc::clone(&self.compiled[&key]);
        let cfg = tapeflow_ir::lint::LintConfig {
            spad_entries: compiled.options.spad_entries,
            spad_banks: SystemConfig::default().spad.banks,
        };
        let mut diags = tapeflow_ir::lint::lint_function(&compiled.func, &cfg);
        diags.extend(tapeflow_core::lint::lint_plan(
            &self.grad,
            &compiled.plan,
            &compiled.options,
            compiled.encoding.as_ref(),
        ));
        tapeflow_ir::lint::sort_diagnostics(&mut diags);
        Some(diags)
    }

    /// The cached compilation failure for `config`, if an earlier attempt
    /// found it infeasible. `None` means "compiled fine" or "never
    /// attempted".
    pub fn compile_error(&self, config: &Config) -> Option<&CoreError> {
        self.infeasible.get(&Self::key_of(config))
    }

    /// Accumulated per-pass wall time across every compilation this
    /// benchmark ran: pass name → (number of runs, total wall time).
    /// Deterministically ordered by pass name. Wall times are
    /// nondeterministic — report them, never fold them into result
    /// bytes.
    pub fn pass_wall(&self) -> &BTreeMap<&'static str, (u64, Duration)> {
        &self.pass_wall
    }

    /// The compiled program behind a Tapeflow/AoS config (memoized).
    ///
    /// # Panics
    ///
    /// Panics when called with an `Enzyme` config or an infeasible
    /// scratchpad (use [`Prepared::try_compiled`] for a `Result`).
    pub fn compiled(&mut self, config: &Config) -> &CompiledProgram {
        self.compiled_for(Self::key_of(config))
    }

    /// Memoizes the program and trace behind `config` without simulating;
    /// returns whether the configuration is feasible. This is the
    /// preparation stage the parallel harness runs per benchmark before
    /// fanning simulations out over read-only `&Prepared` references.
    pub fn ensure_program(&mut self, config: &Config) -> bool {
        self.try_trace_key(config).is_some()
    }

    /// Whether a simulation result for exactly this (config, system,
    /// record) combination is already memoized.
    pub fn has_sim(&self, config: &Config, sys: &SystemConfig, record_times: bool) -> bool {
        self.sims
            .contains_key(&(Self::key_of(config), sys.fingerprint(), record_times))
    }

    /// Runs one simulation *without* touching the memo. Requires the
    /// program to have been prepared via [`Prepared::ensure_program`]
    /// first; returns `None` for infeasible configurations. Takes `&self`
    /// so a worker pool can fan out over shared references.
    pub fn sim_uncached(
        &self,
        config: &Config,
        sys: &SystemConfig,
        record_times: bool,
    ) -> Option<SimReport> {
        let prep = self.preps.get(&Self::key_of(config))?;
        Some(simulate_prepared(
            prep,
            sys,
            &SimOptions {
                record_node_times: record_times,
            },
        ))
    }

    /// Re-runs one simulation under the cycle-attribution probe and
    /// returns the per-cause breakdown. Like [`Prepared::sim_uncached`]
    /// this skips the memo, requires [`Prepared::ensure_program`] first,
    /// and takes `&self` so a worker pool can fan out over shared
    /// references; `None` for infeasible configurations. The breakdown
    /// is a pure function of the trace and system configuration, so its
    /// bytes are reproducible at any job count.
    pub fn stall_breakdown(&self, config: &Config, sys: &SystemConfig) -> Option<CycleBreakdown> {
        let prep = self.preps.get(&Self::key_of(config))?;
        let mut probe = AttributionProbe::new();
        let report = simulate_prepared_probed(
            prep,
            sys,
            &SimOptions {
                record_node_times: false,
            },
            &mut probe,
        );
        let bd = probe.into_breakdown();
        debug_assert_eq!(
            bd.cycles, report.cycles,
            "{}: probe cycles",
            self.bench.name
        );
        bd.check()
            .unwrap_or_else(|e| panic!("{}: {e}", self.bench.name));
        Some(bd)
    }

    /// Re-runs one simulation with the attribution probe in per-inst
    /// mode and resolves the result into source-attributed hot-spot
    /// rows (descending PE-cycles, truncated to `top`). Requires
    /// [`Prepared::ensure_program`] first and takes `&self` like
    /// [`Prepared::stall_breakdown`], so a worker pool can fan out over
    /// shared references; `None` for infeasible configurations. Pure
    /// cycle counters joined against static IR — byte-stable at any job
    /// count.
    pub fn hot_spots(
        &self,
        config: &Config,
        sys: &SystemConfig,
        top: usize,
    ) -> Option<Vec<crate::attr::InstAttr>> {
        let key = Self::key_of(config);
        let prep = self.preps.get(&key)?;
        let trace = self.traces.get(&key)?;
        let func = match key {
            ProgramKey::Gradient => &self.grad.func,
            k => &self.compiled.get(&k)?.func,
        };
        let mut probe =
            AttributionProbe::with_inst_map(crate::attr::node_to_inst(trace), func.insts().len());
        simulate_prepared_probed(
            prep,
            sys,
            &SimOptions {
                record_node_times: false,
            },
            &mut probe,
        );
        let (bd, inst_bd) = probe.into_parts();
        let inst_bd = inst_bd.expect("per-inst mode requested");
        inst_bd
            .check_against(&bd)
            .unwrap_or_else(|e| panic!("{}: {e}", self.bench.name));
        let mut rows = crate::attr::resolve(func, Some(&self.bench.func), &inst_bd);
        rows.truncate(top);
        Some(rows)
    }

    /// Stores a simulation result computed elsewhere (by
    /// [`Prepared::sim_uncached`] on a worker thread) into the memo.
    pub fn insert_sim(
        &mut self,
        config: &Config,
        sys: &SystemConfig,
        record_times: bool,
        report: SimReport,
    ) {
        self.sims.insert(
            (Self::key_of(config), sys.fingerprint(), record_times),
            report,
        );
    }

    /// Simulates under `config` on an explicit system configuration
    /// (memoized on the full configuration); `None` when the program
    /// cannot be compiled for that scratchpad.
    pub fn try_sim_with(
        &mut self,
        config: &Config,
        sys: &SystemConfig,
        record_times: bool,
    ) -> Option<&SimReport> {
        let key = (Self::key_of(config), sys.fingerprint(), record_times);
        if !self.sims.contains_key(&key) {
            self.try_trace_key(config)?;
            // Misses run through the program's sweep session: a sweep
            // that only perturbs cache parameters replays the recorded
            // outcome stream of the previous run (identical report,
            // fraction of the cost) instead of re-simulating cold.
            let prep = Arc::clone(&self.preps[&Self::key_of(config)]);
            let session = self
                .sessions
                .entry((Self::key_of(config), record_times))
                .or_insert_with(|| {
                    SweepSession::new(
                        prep,
                        SimOptions {
                            record_node_times: record_times,
                        },
                    )
                });
            let r = session.simulate(sys);
            self.sims.insert(key, r);
        }
        Some(&self.sims[&key])
    }

    /// Simulates under `config` with the default system for its cache
    /// size (memoized); `None` when the program cannot be compiled for
    /// that scratchpad. `record_times` additionally stores per-node
    /// finish cycles (needed once per benchmark for the lifetime
    /// figures).
    pub fn try_sim(&mut self, config: &Config, record_times: bool) -> Option<&SimReport> {
        self.try_sim_with(config, &sys_for(config), record_times)
    }

    /// Like [`Prepared::try_sim`] but panicking on infeasible configs.
    pub fn sim(&mut self, config: &Config, record_times: bool) -> &SimReport {
        let name = self.bench.name;
        self.try_sim(config, record_times)
            .unwrap_or_else(|| panic!("{name}: scratchpad too small for this program"))
    }
}

/// A planned sweep over one benchmark: arbitrary `(Config, SystemConfig)`
/// units grouped by trace key ([`Prepared::try_trace_key`]), one
/// [`SweepSession`] per trace group, each group's members run in
/// [`tapeflow_sim::plan_order`] to maximize replay-prefix reuse.
/// Independent trace groups are embarrassingly parallel —
/// [`SweepPlanner::run_parallel`] fans them out over the worker pool
/// with order-fixed collection, so results are byte-identical at any
/// job count (and to cold [`simulate_prepared`] runs, the session
/// contract).
pub struct SweepPlanner {
    groups: Vec<PlanGroup>,
    /// Total unit count (feasible or not) — the result vector's length.
    n_units: usize,
    opts: SimOptions,
}

struct PlanGroup {
    prep: Arc<PreparedSim>,
    /// `(original unit index, system)` members, in caller order.
    members: Vec<(usize, SystemConfig)>,
}

impl std::fmt::Debug for SweepPlanner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepPlanner")
            .field("groups", &self.groups.len())
            .field("units", &self.n_units)
            .finish()
    }
}

impl SweepPlanner {
    /// Plans `units` against `p`, memoizing programs/traces on the way.
    /// Infeasible configurations keep their slot (the corresponding
    /// result is `None`); groups appear in first-occurrence order.
    pub fn new(p: &mut Prepared, units: &[(Config, SystemConfig)], record_times: bool) -> Self {
        let mut group_of: HashMap<ProgramKey, usize> = HashMap::new();
        let mut groups: Vec<PlanGroup> = Vec::new();
        for (i, (config, sys)) in units.iter().enumerate() {
            let Some(key) = p.try_trace_key(config) else {
                continue;
            };
            let gi = *group_of.entry(key).or_insert_with(|| {
                groups.push(PlanGroup {
                    prep: Arc::clone(&p.preps[&key]),
                    members: Vec::new(),
                });
                groups.len() - 1
            });
            groups[gi].members.push((i, *sys));
        }
        SweepPlanner {
            groups,
            n_units: units.len(),
            opts: SimOptions {
                record_node_times: record_times,
            },
        }
    }

    /// Number of trace groups (equals the number of sessions a run
    /// drives, and the parallelism [`SweepPlanner::run_parallel`] can
    /// exploit).
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Runs every group serially. Result `i` corresponds to unit `i`;
    /// `None` marks an infeasible configuration.
    pub fn run(&self) -> Vec<Option<SimReport>> {
        self.run_parallel(1)
    }

    /// Runs independent trace groups across `jobs` workers (callers
    /// clamp; `1` runs inline). Collection is order-fixed, so the
    /// result bytes are identical at any job count.
    pub fn run_parallel(&self, jobs: usize) -> Vec<Option<SimReport>> {
        let opts = self.opts;
        let per_group: Vec<Vec<SimReport>> =
            crate::pool::map_parallel(&self.groups, jobs, |_, g| {
                let systems: Vec<SystemConfig> = g.members.iter().map(|(_, s)| *s).collect();
                tapeflow_sim::run_group(Arc::clone(&g.prep), opts, &systems)
            });
        let mut out: Vec<Option<SimReport>> = (0..self.n_units).map(|_| None).collect();
        for (g, reports) in self.groups.iter().zip(per_group) {
            for (&(i, _), r) in g.members.iter().zip(reports) {
                out[i] = Some(r);
            }
        }
        out
    }
}

/// Geometric mean of a non-empty slice.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapeflow_benchmarks::{by_name, Scale};
    use tapeflow_sim::ReplacementPolicy;

    #[test]
    fn labels() {
        assert_eq!(Config::enzyme(32768).label(), "Enzyme_32k");
        assert_eq!(Config::tapeflow(2048).label(), "Tflow_2k");
        assert_eq!(Config::AosOnCache { cache_bytes: 512 }.label(), "AoS_512B");
    }

    #[test]
    fn memoization_returns_identical_reports() {
        let mut p = Prepared::new(by_name("logsum", Scale::Tiny));
        let a = p.sim(&Config::enzyme(1024), false).cycles;
        let b = p.sim(&Config::enzyme(1024), false).cycles;
        assert_eq!(a, b);
        let t = p.sim(&Config::tapeflow(1024), false).cycles;
        assert!(t > 0);
    }

    #[test]
    fn memo_keys_on_full_system_config() {
        // Same cache size, different replacement policy: the memo must
        // keep both results apart (the old key aliased them).
        let mut p = Prepared::new(by_name("logsum", Scale::Tiny));
        let config = Config::enzyme(1024);
        let lru = sys_for(&config);
        let mut fifo = lru;
        fifo.cache.policy = ReplacementPolicy::Fifo;
        let r_lru = p.try_sim_with(&config, &lru, false).unwrap().clone();
        let r_fifo = p.try_sim_with(&config, &fifo, false).unwrap().clone();
        assert!(p.has_sim(&config, &lru, false));
        assert!(p.has_sim(&config, &fifo, false));
        // Both memo entries stay distinct and each re-read returns its
        // own result.
        assert_eq!(
            p.try_sim_with(&config, &lru, false).unwrap().cycles,
            r_lru.cycles
        );
        assert_eq!(
            p.try_sim_with(&config, &fifo, false).unwrap().cycles,
            r_fifo.cycles
        );
        assert_eq!(
            p.sims.len(),
            2,
            "two distinct memo entries, not one aliased"
        );
    }

    #[test]
    fn uncached_sim_matches_memoized_path() {
        let mut p = Prepared::new(by_name("logsum", Scale::Tiny));
        let config = Config::tapeflow(2048);
        let sys = sys_for(&config);
        assert!(p.ensure_program(&config));
        let direct = p.sim_uncached(&config, &sys, false).unwrap();
        let memoized = p.try_sim_with(&config, &sys, false).unwrap();
        assert_eq!(direct.cycles, memoized.cycles);
        assert_eq!(direct.dram_fill_bytes, memoized.dram_fill_bytes);
    }

    #[test]
    fn one_arena_serves_the_whole_sweep() {
        // Every cache size of the same program key shares one
        // `PreparedSim` (pointer-identical), and the arena mirrors the
        // trace it was built from.
        let mut p = Prepared::new(by_name("logsum", Scale::Tiny));
        let a = p.try_prepared_sim(&Config::enzyme(1024)).unwrap();
        let b = p.try_prepared_sim(&Config::enzyme(32768)).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "sweep rebuilt the arena");
        let trace = p.try_trace_shared(&Config::enzyme(1024)).unwrap();
        assert_eq!(a.len(), trace.len());
        // A different program key gets its own arena.
        let t = p.try_prepared_sim(&Config::tapeflow(1024)).unwrap();
        assert!(!Arc::ptr_eq(&a, &t));
    }

    #[test]
    fn infeasible_configs_are_cached_not_retried() {
        let mut p = Prepared::new(by_name("mttkrp", Scale::Tiny));
        let tiny_spad = Config::Tapeflow {
            cache_bytes: 32768,
            spad_bytes: 16, // 2 entries: too small for any real region
            double_buffer: true,
            compress: false,
        };
        if p.ensure_program(&tiny_spad) {
            return; // feasible at this scale: nothing to assert
        }
        assert!(p.try_sim(&tiny_spad, false).is_none());
        assert!(!p.ensure_program(&tiny_spad), "stays infeasible");
        // The cache keeps the diagnosis, not just a boolean, and the
        // Result path surfaces the same error object.
        let cached = p.compile_error(&tiny_spad).cloned().expect("cached error");
        assert_eq!(p.try_compiled(&tiny_spad).unwrap_err(), cached);
        assert!(matches!(
            cached,
            CoreError::SpadTooSmall { .. } | CoreError::RegionTooLarge { .. }
        ));
    }

    #[test]
    fn enzyme_config_has_no_compiled_program_as_error_not_panic() {
        let mut p = Prepared::new(by_name("logsum", Scale::Tiny));
        let err = p.try_compiled(&Config::enzyme(1024)).unwrap_err();
        assert!(matches!(err, CoreError::Pipeline(_)));
        assert!(p.compile_error(&Config::enzyme(1024)).is_none());
    }

    #[test]
    fn compilations_record_pass_timings() {
        let mut p = Prepared::new(by_name("logsum", Scale::Tiny));
        assert!(p.ensure_program(&Config::tapeflow(1024)));
        let names: Vec<_> = p.pass_wall().keys().copied().collect();
        assert_eq!(names, ["layering", "regions", "spad-index", "streams"]);
        assert!(p.pass_wall().values().all(|(runs, _)| *runs == 1));
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!(geomean(&[]).is_nan());
    }
}
