//! # tapeflow-bench
//!
//! The evaluation harness: memoized runners that take each paper
//! benchmark through AD → Tapeflow passes → trace → simulation under the
//! paper's configurations (`Enzyme_N`, `Tflow_N`, AoS-only), plus the
//! experiment modules that regenerate **every table and figure** of the
//! paper's Chapter 2 characterization and Chapter 4 evaluation.
//!
//! Run everything:
//!
//! ```text
//! cargo run --release -p tapeflow-bench --bin experiments -- all
//! ```
//!
//! or a single experiment (`fig4.1`, `table4.1`, ...). Pass `--csv DIR`
//! to also write each table as CSV, `--jobs N` to fan simulations out
//! over N worker threads (results are byte-identical to a serial run),
//! and `--json PATH` to pick where the machine-readable results go
//! (default `results/BENCH_experiments.json`).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod attr;
pub mod experiments;
pub mod harness;
pub mod hostperf;
pub mod microbench;
pub mod pool;
pub mod table;

pub use harness::{Config, Prepared};
pub use table::Table;
