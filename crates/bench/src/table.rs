//! Plain-text table rendering and CSV output.

use std::fmt::Write as _;

/// A titled table of strings.
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Title printed above the table.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows; ragged rows are padded on render.
    pub rows: Vec<Vec<String>>,
    /// Free-form notes printed under the table.
    pub notes: Vec<String>,
}

impl Table {
    /// Creates a table with a title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Appends a note.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let ncols = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        fn cell(r: &[String], c: usize) -> &str {
            r.get(c).map(String::as_str).unwrap_or("")
        }
        let widths: Vec<usize> = (0..ncols)
            .map(|c| {
                self.rows
                    .iter()
                    .map(|r| cell(r, c).len())
                    .chain([cell(&self.headers, c).len()])
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |out: &mut String, cells: &[String]| {
            let mut s = String::new();
            for (c, w) in widths.iter().enumerate() {
                if c > 0 {
                    s.push_str("  ");
                }
                let _ = write!(s, "{:<width$}", cell(cells, c), width = w);
            }
            let _ = writeln!(out, "{}", s.trim_end());
        };
        line(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for r in &self.rows {
            line(&mut out, r);
        }
        for n in &self.notes {
            let _ = writeln!(out, "  note: {n}");
        }
        out
    }

    /// The table as a JSON object (title, headers, rows, notes) for the
    /// machine-readable results document.
    pub fn to_json(&self) -> tapeflow_sim::json::Value {
        use tapeflow_sim::json::Value;
        let strings =
            |xs: &[String]| Value::Arr(xs.iter().map(|s| Value::Str(s.clone())).collect());
        let mut o = Value::object();
        o.set("title", self.title.clone())
            .set("headers", strings(&self.headers))
            .set(
                "rows",
                Value::Arr(self.rows.iter().map(|r| strings(r)).collect()),
            )
            .set("notes", strings(&self.notes));
        o
    }

    /// Renders the table as CSV (headers + rows; notes as `#` comments).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        for n in &self.notes {
            let _ = writeln!(out, "# {n}");
        }
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                r.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Formats a ratio with two decimals and a trailing `x`.
pub fn ratio(v: f64) -> String {
    format!("{v:.2}x")
}

/// Formats a fraction as a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Formats bytes as KiB with one decimal.
pub fn kib(bytes: u64) -> String {
    format!("{:.1}K", bytes as f64 / 1024.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "2.50x".into()]);
        t.note("hello");
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("longer  2.50x"));
        assert!(s.contains("note: hello"));
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new("c", &["a,b", "c"]);
        t.row(vec!["x\"y".into(), "z".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\",c"));
        assert!(csv.contains("\"x\"\"y\",z"));
    }

    #[test]
    fn json_mirrors_table() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.note("n");
        let j = t.to_json();
        assert_eq!(j.get("title").unwrap().as_str(), Some("demo"));
        assert_eq!(j.get("rows").unwrap().as_arr().unwrap().len(), 1);
        let text = j.render();
        assert_eq!(tapeflow_sim::json::Value::parse(&text).unwrap(), j);
    }

    #[test]
    fn formatters() {
        assert_eq!(ratio(2.345), "2.35x");
        assert_eq!(pct(0.125), "12.5%");
        assert_eq!(kib(1536), "1.5K");
    }
}
