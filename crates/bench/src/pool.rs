//! A deterministic scoped worker pool (no external dependencies).
//!
//! Workers pull item indices from a shared atomic counter and send
//! `(index, result)` pairs back over a channel; results are re-assembled
//! into an index-aligned vector, so the output order never depends on
//! thread scheduling. Panics in workers propagate out of the scope.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Worker count to use when the caller did not pick one: the number of
/// cores the process may run on (1 if that cannot be determined).
pub fn available_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Normalizes a user-requested worker count to a sane pool size:
/// `0` means "auto" (all available cores), and anything beyond 8× the
/// available cores is clamped there (thousands of scoped threads only
/// add scheduling overhead — the pool pulls indices off one counter, so
/// extra workers never change the results, just burn stacks). Returns
/// the effective count plus a human-readable note when the request was
/// adjusted, so CLIs can report the adjustment on stderr instead of
/// refusing the flag.
pub fn clamp_jobs(requested: usize) -> (usize, Option<String>) {
    let avail = available_jobs();
    let cap = avail.saturating_mul(8).max(1);
    if requested == 0 {
        (
            avail,
            Some(format!("--jobs 0: auto-selected {avail} worker thread(s)")),
        )
    } else if requested > cap {
        (
            cap,
            Some(format!(
                "--jobs {requested} oversubscribes {avail} available core(s); \
                 clamped to {cap}"
            )),
        )
    } else {
        (requested, None)
    }
}

/// Applies `f` to every item on up to `jobs` scoped worker threads and
/// returns the results in item order. `f` receives `(index, &item)`.
/// With `jobs <= 1` (or a single item) this degenerates to a plain
/// serial map on the calling thread.
pub fn map_parallel<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len());
    if jobs <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                // The receiver outlives the scope; send only fails if the
                // main thread already panicked, in which case stop early.
                if tx.send((i, f(i, &items[i]))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
        for (i, r) in rx {
            out[i] = Some(r);
        }
        out.into_iter()
            .map(|r| r.expect("every index produced exactly once"))
            .collect()
    })
}

/// Applies `f` to every element of `items` in place, partitioned across
/// up to `jobs` scoped worker threads (contiguous chunks, so each element
/// is visited exactly once). Used where per-item mutable state must be
/// built up (e.g. per-benchmark memo maps) before a read-only fan-out.
pub fn for_each_mut_parallel<T, F>(items: &mut [T], jobs: usize, f: F)
where
    T: Send,
    F: Fn(&mut T) + Sync,
{
    let jobs = jobs.max(1).min(items.len());
    if jobs <= 1 {
        for t in items {
            f(t);
        }
        return;
    }
    let chunk = items.len().div_ceil(jobs);
    std::thread::scope(|scope| {
        for group in items.chunks_mut(chunk) {
            let f = &f;
            scope.spawn(move || {
                for t in group {
                    f(t);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_index_aligned() {
        let items: Vec<usize> = (0..100).collect();
        let serial = map_parallel(&items, 1, |i, x| i * 1000 + x * 3);
        for jobs in [2, 4, 7] {
            let parallel = map_parallel(&items, jobs, |i, x| i * 1000 + x * 3);
            assert_eq!(parallel, serial, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_and_oversubscribed_inputs() {
        let none: Vec<u32> = Vec::new();
        assert!(map_parallel(&none, 8, |_, x| *x).is_empty());
        let one = [41u32];
        assert_eq!(map_parallel(&one, 8, |_, x| x + 1), vec![42]);
    }

    #[test]
    fn mutating_visits_every_element_once() {
        let mut items: Vec<u64> = (0..37).collect();
        for_each_mut_parallel(&mut items, 4, |x| *x += 1000);
        assert_eq!(items, (1000..1037).collect::<Vec<u64>>());
    }

    #[test]
    fn available_jobs_is_positive() {
        assert!(available_jobs() >= 1);
    }

    #[test]
    fn clamp_jobs_normalizes_the_edges() {
        let avail = available_jobs();
        let (auto, note) = clamp_jobs(0);
        assert_eq!(auto, avail);
        assert!(note.expect("zero gets a note").contains("auto"));
        let (same, note) = clamp_jobs(2);
        assert_eq!((same, note), (2, None));
        let (capped, note) = clamp_jobs(usize::MAX);
        assert_eq!(capped, avail.saturating_mul(8).max(1));
        assert!(note.expect("oversized gets a note").contains("clamped"));
    }
}
