//! Host-throughput measurement: simulated cycles per wall-clock second.
//!
//! Two sweeps are timed per benchmark, on both engines:
//!
//! * **Cache ladder** — the gradient (Enzyme-mode) trace swept over a
//!   descending ladder of cache sizes ([`LADDER`]). This is the
//!   incremental-re-simulation scenario: the event core drives the whole
//!   ladder through one [`SweepSession`], which records the first run's
//!   per-access cache outcomes and re-simulates each subsequent size by
//!   replaying the recorded address stream — a full match costs a cache
//!   replay instead of a scheduler run, and a divergence resumes from
//!   the last unchanged checkpoint. The legacy scalar loop runs every
//!   ladder point from scratch.
//! * **Mixed sweep** — the canonical configuration sweep (the one
//!   `experiments --json` reports and CI regenerates), which changes the
//!   program between points (Enzyme vs. Tapeflow vs. AoS). The event
//!   side runs it through a [`SweepPlanner`]: units are grouped by trace
//!   key, each group gets one generalized sweep session (so the shared
//!   Tapeflow trace's scratchpad/stream points replay each other's
//!   outcome streams instead of re-running cold), and independent trace
//!   groups fan out across `jobs` workers with order-fixed collection.
//!   Legacy rebuilds its dependence bookkeeping from the trace every run
//!   and burns a host iteration per simulated cycle even while only a
//!   stream transfer is in flight.
//!
//! Both engines produce byte-identical reports (the equivalence suite is
//! the oracle); the cycle totals are asserted equal here as a cheap
//! tripwire. Wall-clock derived fields are nondeterministic by nature;
//! the JSON document ([`host_perf_json`]) zeroes them under `stable` —
//! along with the host-identity fields (CPU count, compiler) that vary
//! between machines — so the fold into `experiments --stable-json`
//! stays byte-reproducible.

use crate::experiments::Lab;
use crate::harness::{geomean, sys_for, Config, Prepared, SweepPlanner};
use std::sync::Arc;
use std::time::Instant;
use tapeflow_benchmarks::{by_name, Scale, NAMES};
use tapeflow_ir::Trace;
use tapeflow_sim::json::Value;
use tapeflow_sim::{
    try_simulate_probed_with, Engine, NoProbe, SimOptions, SweepSession, SystemConfig,
};

const KIB: usize = 1024;

/// The cache-size ladder (bytes, descending): a miss-ratio-curve grid
/// at four points per octave ({1, 1.25, 1.5, 1.75} x 2^k) from 2 MiB
/// down to 16 KiB — the resolution a cache study needs to place the
/// working-set knee — then power-of-two steps through the tail where
/// every tiny-scale trace is far off-knee. Descending order maximizes
/// prefix reuse in the session: every access that hits in an N-byte
/// cache also hits in the larger predecessors that recorded the
/// outcome stream, so shrinking sweeps diverge late (or not at all
/// once the working set stops fitting either size).
pub const LADDER: [usize; 33] = [
    2048 * KIB,
    1792 * KIB,
    1536 * KIB,
    1280 * KIB,
    1024 * KIB,
    896 * KIB,
    768 * KIB,
    640 * KIB,
    512 * KIB,
    448 * KIB,
    384 * KIB,
    320 * KIB,
    256 * KIB,
    224 * KIB,
    192 * KIB,
    160 * KIB,
    128 * KIB,
    112 * KIB,
    96 * KIB,
    80 * KIB,
    64 * KIB,
    56 * KIB,
    48 * KIB,
    40 * KIB,
    32 * KIB,
    28 * KIB,
    24 * KIB,
    20 * KIB,
    16 * KIB,
    8 * KIB,
    4 * KIB,
    2 * KIB,
    KIB,
];

/// One engine's timing over a sweep.
#[derive(Clone, Copy, Debug)]
pub struct EngineTiming {
    /// Wall-clock seconds for the whole sweep (best of the repeats).
    pub seconds: f64,
    /// Simulated cycles per wall-clock second.
    pub sim_cycles_per_sec: f64,
}

impl EngineTiming {
    fn from(seconds: f64, cycles: u64) -> Self {
        EngineTiming {
            seconds,
            sim_cycles_per_sec: if seconds > 0.0 {
                cycles as f64 / seconds
            } else {
                0.0
            },
        }
    }
}

/// Both engines' timings over one sweep.
#[derive(Clone, Copy, Debug)]
pub struct SweepTiming {
    /// Configurations the sweep simulated.
    pub configs: usize,
    /// Independent trace groups the event side planned (each drives one
    /// sweep session; the ladder is a single group by construction).
    pub trace_groups: usize,
    /// Total simulated cycles across the sweep (identical for both
    /// engines — asserted during measurement).
    pub sim_cycles: u64,
    /// Event-driven core (shared arena; session reuse; group fan-out).
    pub event: EngineTiming,
    /// Legacy scalar loop (per-run rebuild, no gap-skipping, no reuse).
    pub legacy: EngineTiming,
    /// `legacy.seconds / event.seconds`.
    pub speedup: f64,
}

impl SweepTiming {
    fn from(
        configs: usize,
        trace_groups: usize,
        sim_cycles: u64,
        event_secs: f64,
        legacy_secs: f64,
    ) -> Self {
        SweepTiming {
            configs,
            trace_groups,
            sim_cycles,
            event: EngineTiming::from(event_secs, sim_cycles),
            legacy: EngineTiming::from(legacy_secs, sim_cycles),
            speedup: if event_secs > 0.0 {
                legacy_secs / event_secs
            } else {
                0.0
            },
        }
    }
}

/// Host throughput of one benchmark under both engines.
#[derive(Clone, Debug)]
pub struct HostPerf {
    /// Benchmark name.
    pub name: &'static str,
    /// The cache-size ladder on the gradient trace (incremental resim).
    pub ladder: SweepTiming,
    /// The canonical mixed configuration sweep (planner-driven).
    pub mixed: SweepTiming,
}

/// Identity of the machine and binary that produced a measurement — the
/// `host` section of `tapeflow.bench.host_perf/v2`. Throughput numbers
/// are only comparable when these match; the section makes silently
/// mixing hosts in a results file impossible. All fields are scrubbed
/// under `stable` (they differ between machines by definition).
#[derive(Clone, Debug)]
pub struct HostMeta {
    /// Logical CPUs visible to the process.
    pub logical_cpus: usize,
    /// `rustc --version` of the compiler that built this binary.
    pub rustc: String,
    /// Cargo `opt-level` the binary was built at.
    pub opt_level: String,
    /// Worker threads used for the mixed sweep's trace-group fan-out.
    pub jobs: usize,
}

/// Snapshots the host identity; `jobs` is the worker count the caller
/// ran the mixed sweep with (after clamping).
pub fn host_meta(jobs: usize) -> HostMeta {
    HostMeta {
        logical_cpus: crate::pool::available_jobs(),
        rustc: env!("TAPEFLOW_RUSTC_VERSION").to_string(),
        opt_level: env!("TAPEFLOW_OPT_LEVEL").to_string(),
        jobs,
    }
}

/// Times the legacy engine over `(system, trace)` pairs, best of
/// `repeats`; returns `(seconds, total cycles)`.
fn time_legacy(
    units: &[(SystemConfig, Arc<Trace>)],
    opts: &SimOptions,
    repeats: usize,
) -> (f64, u64) {
    let mut secs = f64::INFINITY;
    let mut sim_cycles = 0u64;
    for rep in 0..repeats {
        let start = Instant::now();
        let mut cycles = 0u64;
        for (sys, trace) in units {
            cycles += try_simulate_probed_with(Engine::Legacy, trace, sys, opts, &mut NoProbe)
                .expect("sweep traces fit the index limits")
                .cycles;
        }
        secs = secs.min(start.elapsed().as_secs_f64());
        if rep == 0 {
            sim_cycles = cycles;
        }
    }
    (secs, sim_cycles)
}

/// Times the cache ladder on the gradient trace: the event side drives
/// one [`SweepSession`] down the ladder (a fresh session per repeat —
/// the session *is* the thing being measured), the legacy side runs
/// every point cold.
fn measure_ladder(p: &mut Prepared, repeats: usize) -> SweepTiming {
    let config = Config::enzyme(LADDER[0]);
    let trace = p.try_trace_shared(&config).expect("gradient always traces");
    let prep = p.try_prepared_sim(&config).expect("gradient always preps");
    let systems: Vec<SystemConfig> = LADDER
        .iter()
        .map(|&b| SystemConfig::with_cache_bytes(b))
        .collect();
    let opts = SimOptions::default();

    let mut sim_cycles = 0u64;
    let mut event_secs = f64::INFINITY;
    for rep in 0..repeats {
        let start = Instant::now();
        let mut session = SweepSession::new(Arc::clone(&prep), opts);
        let mut cycles = 0u64;
        for (k, sys) in systems.iter().enumerate() {
            // The ladder is its own plan (descending sizes), so the
            // session gets the exact tail length as lookahead.
            cycles += session
                .simulate_lookahead(sys, systems.len() - k - 1)
                .cycles;
        }
        event_secs = event_secs.min(start.elapsed().as_secs_f64());
        if rep == 0 {
            sim_cycles = cycles;
        }
    }

    let legacy_units: Vec<_> = systems
        .iter()
        .map(|&sys| (sys, Arc::clone(&trace)))
        .collect();
    let (legacy_secs, legacy_cycles) = time_legacy(&legacy_units, &opts, repeats);
    assert_eq!(
        legacy_cycles, sim_cycles,
        "{}: engines disagree on ladder cycles",
        p.bench.name
    );
    SweepTiming::from(systems.len(), 1, sim_cycles, event_secs, legacy_secs)
}

/// Times the canonical mixed sweep on both engines. The event side is
/// the planner path production code uses: grouping, tracing and arena
/// preparation happen once outside the timed region (both engines share
/// them), and each repeat times exactly `planner.run_parallel(jobs)` —
/// fresh sessions per repeat, since the sessions are the thing being
/// measured.
fn measure_mixed(p: &mut Prepared, repeats: usize, jobs: usize) -> SweepTiming {
    let units: Vec<(Config, SystemConfig)> = Lab::json_configs()
        .iter()
        .map(|c| (*c, sys_for(c)))
        .collect();
    let planner = SweepPlanner::new(p, &units, false);
    let opts = SimOptions::default();

    let mut sim_cycles = 0u64;
    let mut configs = 0usize;
    let mut event_secs = f64::INFINITY;
    for rep in 0..repeats {
        let start = Instant::now();
        let reports = planner.run_parallel(jobs);
        event_secs = event_secs.min(start.elapsed().as_secs_f64());
        if rep == 0 {
            configs = reports.iter().flatten().count();
            sim_cycles = reports.iter().flatten().map(|r| r.cycles).sum();
        }
    }

    let legacy_units: Vec<_> = units
        .iter()
        .filter_map(|(c, sys)| Some((*sys, p.try_trace_shared(c)?)))
        .collect();
    let (legacy_secs, legacy_cycles) = time_legacy(&legacy_units, &opts, repeats);
    assert_eq!(
        legacy_cycles, sim_cycles,
        "{}: engines disagree on mixed-sweep cycles",
        p.bench.name
    );
    SweepTiming::from(
        configs,
        planner.group_count(),
        sim_cycles,
        event_secs,
        legacy_secs,
    )
}

/// Times one benchmark on both engines. `repeats` runs each sweep that
/// many times per engine and keeps the fastest wall time (minimum is the
/// standard noise filter for throughput numbers); `jobs` is the worker
/// count for the mixed sweep's trace-group fan-out (`1` = serial).
pub fn measure_one(bench: &'static str, scale: Scale, repeats: usize, jobs: usize) -> HostPerf {
    let mut p = Prepared::new(by_name(bench, scale));
    let repeats = repeats.max(1);
    HostPerf {
        name: bench,
        ladder: measure_ladder(&mut p, repeats),
        mixed: measure_mixed(&mut p, repeats, jobs.max(1)),
    }
}

/// Times a named subset of the registry at `scale`. Callers validate
/// the names (the CLI exits 2 with the registry listing on an unknown
/// one); this borrows the `'static` spellings from [`NAMES`].
pub fn measure_named(
    names: &[&'static str],
    scale: Scale,
    repeats: usize,
    jobs: usize,
) -> Vec<HostPerf> {
    names
        .iter()
        .map(|b| measure_one(b, scale, repeats, jobs))
        .collect()
}

/// Times the full registry at `scale`.
pub fn measure(scale: Scale, repeats: usize, jobs: usize) -> Vec<HostPerf> {
    measure_named(&NAMES, scale, repeats, jobs)
}

/// Geometric mean of the per-benchmark ladder-sweep speedups (the
/// headline number — the incremental-resim scenario).
pub fn geomean_speedup(results: &[HostPerf]) -> f64 {
    geomean(&results.iter().map(|r| r.ladder.speedup).collect::<Vec<_>>())
}

/// Geometric mean of the per-benchmark mixed-sweep speedups.
pub fn geomean_mixed_speedup(results: &[HostPerf]) -> f64 {
    geomean(&results.iter().map(|r| r.mixed.speedup).collect::<Vec<_>>())
}

/// The machine-readable document (`tapeflow.bench.host_perf/v2`).
/// `stable` zeroes every wall-clock-derived field (seconds, throughput,
/// speedups) and every host-identity field (CPU count, compiler,
/// opt-level, job count) so the bytes reproduce across hosts and runs;
/// the schema, benchmark list, config/group counts and simulated-cycle
/// totals remain.
///
/// v2 over v1: adds the `host` section and per-sweep `trace_groups`.
pub fn host_perf_json(results: &[HostPerf], scale: Scale, meta: &HostMeta, stable: bool) -> Value {
    let scrub = |v: f64| if stable { 0.0 } else { v };
    let timing = |t: &EngineTiming| {
        let mut e = Value::object();
        e.set("seconds", scrub(t.seconds))
            .set("sim_cycles_per_sec", scrub(t.sim_cycles_per_sec));
        e
    };
    let sweep = |s: &SweepTiming| {
        let mut engines = Value::object();
        engines
            .set("event", timing(&s.event))
            .set("legacy", timing(&s.legacy));
        let mut v = Value::object();
        v.set("configs", s.configs)
            .set("trace_groups", s.trace_groups)
            .set("sim_cycles", s.sim_cycles)
            .set("engines", engines)
            .set("speedup", scrub(s.speedup));
        v
    };
    let benches: Vec<Value> = results
        .iter()
        .map(|r| {
            let mut b = Value::object();
            b.set("name", r.name)
                .set("cache_ladder", sweep(&r.ladder))
                .set("mixed_sweep", sweep(&r.mixed));
            b
        })
        .collect();
    let ladder: Vec<Value> = LADDER.iter().map(|&b| Value::from(b)).collect();
    let mut host = Value::object();
    host.set("logical_cpus", if stable { 0 } else { meta.logical_cpus })
        .set("rustc", if stable { "" } else { meta.rustc.as_str() })
        .set(
            "opt_level",
            if stable { "" } else { meta.opt_level.as_str() },
        )
        .set("jobs", if stable { 0 } else { meta.jobs });
    let mut doc = Value::object();
    doc.set("schema", "tapeflow.bench.host_perf/v2")
        .set("scale", format!("{scale:?}"))
        .set("host", host)
        .set("ladder_bytes", Value::Arr(ladder))
        .set("benchmarks", Value::Arr(benches))
        .set("geomean_ladder_speedup", scrub(geomean_speedup(results)))
        .set(
            "geomean_mixed_speedup",
            scrub(geomean_mixed_speedup(results)),
        );
    doc
}

/// Human-readable table for the CLI.
pub fn render_table(results: &[HostPerf]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:>12} {:>14} {:>14} {:>9} {:>9}",
        "bench", "sim cycles", "event Mcyc/s", "legacy Mcyc/s", "ladder", "mixed"
    );
    for r in results {
        let _ = writeln!(
            out,
            "{:<12} {:>12} {:>14.2} {:>14.2} {:>8.2}x {:>8.2}x",
            r.name,
            r.ladder.sim_cycles + r.mixed.sim_cycles,
            r.ladder.event.sim_cycles_per_sec / 1e6,
            r.ladder.legacy.sim_cycles_per_sec / 1e6,
            r.ladder.speedup,
            r.mixed.speedup
        );
    }
    let _ = writeln!(
        out,
        "geomean sweep speedup: ladder {:.2}x, mixed {:.2}x",
        geomean_speedup(results),
        geomean_mixed_speedup(results)
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_benchmark_measures_and_serializes() {
        let r = measure_one("logsum", Scale::Tiny, 1, 2);
        assert!(r.ladder.configs == LADDER.len());
        assert_eq!(r.ladder.trace_groups, 1);
        assert!(r.mixed.configs > 0, "no feasible mixed configs timed");
        assert!(
            r.mixed.trace_groups > 1,
            "canonical sweep spans several programs"
        );
        assert!(r.ladder.sim_cycles > 0 && r.mixed.sim_cycles > 0);
        assert!(r.ladder.event.seconds > 0.0 && r.ladder.legacy.seconds > 0.0);
        let doc = host_perf_json(std::slice::from_ref(&r), Scale::Tiny, &host_meta(2), false);
        let parsed = Value::parse(&doc.render()).expect("emitted JSON parses");
        assert_eq!(
            parsed.get("schema").and_then(Value::as_str),
            Some("tapeflow.bench.host_perf/v2")
        );
        let host = parsed.get("host").expect("host section");
        assert!(host.get("logical_cpus").and_then(Value::as_u64).unwrap() > 0);
        assert!(!host
            .get("rustc")
            .and_then(Value::as_str)
            .unwrap()
            .is_empty());
        assert_eq!(host.get("jobs").and_then(Value::as_u64), Some(2));
        assert_eq!(
            parsed
                .get("ladder_bytes")
                .and_then(Value::as_arr)
                .map(|a| a.len()),
            Some(LADDER.len())
        );
        let b = &parsed.get("benchmarks").and_then(Value::as_arr).unwrap()[0];
        assert_eq!(b.get("name").and_then(Value::as_str), Some("logsum"));
        for sweep in ["cache_ladder", "mixed_sweep"] {
            let s = b.get(sweep).expect(sweep);
            assert!(s.get("sim_cycles").and_then(Value::as_u64).unwrap() > 0);
            assert!(s.get("trace_groups").and_then(Value::as_u64).unwrap() > 0);
            assert!(s.get("engines").and_then(|e| e.get("event")).is_some());
        }
    }

    #[test]
    fn stable_json_zeroes_every_wall_and_host_field() {
        let r = measure_one("logsum", Scale::Tiny, 1, 1);
        let doc = host_perf_json(std::slice::from_ref(&r), Scale::Tiny, &host_meta(1), true);
        let parsed = Value::parse(&doc.render()).expect("parses");
        assert_eq!(parsed.get("geomean_ladder_speedup"), Some(&Value::Num(0.0)));
        assert_eq!(parsed.get("geomean_mixed_speedup"), Some(&Value::Num(0.0)));
        let host = parsed.get("host").expect("host section survives");
        assert_eq!(host.get("logical_cpus").and_then(Value::as_u64), Some(0));
        assert_eq!(host.get("rustc").and_then(Value::as_str), Some(""));
        assert_eq!(host.get("opt_level").and_then(Value::as_str), Some(""));
        assert_eq!(host.get("jobs").and_then(Value::as_u64), Some(0));
        let b = &parsed.get("benchmarks").and_then(Value::as_arr).unwrap()[0];
        for sweep in ["cache_ladder", "mixed_sweep"] {
            let s = b.get(sweep).expect(sweep);
            assert_eq!(s.get("speedup"), Some(&Value::Num(0.0)), "{sweep}");
            for engine in ["event", "legacy"] {
                let e = s.get("engines").and_then(|e| e.get(engine)).unwrap();
                assert_eq!(e.get("seconds"), Some(&Value::Num(0.0)), "{sweep}/{engine}");
                assert_eq!(
                    e.get("sim_cycles_per_sec"),
                    Some(&Value::Num(0.0)),
                    "{sweep}/{engine}"
                );
            }
            // The deterministic parts survive the scrub.
            assert!(s.get("sim_cycles").and_then(Value::as_u64).unwrap() > 0);
            assert!(s.get("trace_groups").and_then(Value::as_u64).unwrap() > 0);
        }
    }
}
