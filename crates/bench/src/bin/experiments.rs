//! Regenerates every table and figure of the Tapeflow evaluation.
//!
//! ```text
//! experiments all [--scale tiny|small|large] [--csv DIR]
//! experiments fig4.1 table4.1 ...
//! ```

use std::path::PathBuf;
use tapeflow_bench::experiments::{Lab, IDS};
use tapeflow_benchmarks::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ids: Vec<String> = Vec::new();
    let mut scale = Scale::Small;
    let mut csv_dir: Option<PathBuf> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                let v = it.next().unwrap_or_default();
                scale = match v.as_str() {
                    "tiny" => Scale::Tiny,
                    "small" => Scale::Small,
                    "large" => Scale::Large,
                    other => {
                        eprintln!("unknown scale {other:?} (tiny|small|large)");
                        std::process::exit(2);
                    }
                };
            }
            "--csv" => {
                csv_dir = Some(PathBuf::from(it.next().unwrap_or_else(|| ".".into())));
            }
            "all" => ids.extend(IDS.iter().map(|s| s.to_string())),
            "--help" | "-h" => {
                println!("usage: experiments [all | <id>...] [--scale tiny|small|large] [--csv DIR]");
                println!("ids: {}", IDS.join(" "));
                return;
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        eprintln!("no experiments selected; try `experiments all` (ids: {})", IDS.join(" "));
        std::process::exit(2);
    }
    if let Some(d) = &csv_dir {
        std::fs::create_dir_all(d).expect("create csv dir");
    }
    let mut lab = Lab::new(scale);
    for id in ids {
        let start = std::time::Instant::now();
        let tables = lab.run(&id);
        for t in &tables {
            println!("{}", t.render());
            if let Some(d) = &csv_dir {
                let file = d.join(format!("{}.csv", id.replace('.', "_")));
                std::fs::write(&file, t.to_csv()).expect("write csv");
            }
        }
        eprintln!("[{id} done in {:.1}s]\n", start.elapsed().as_secs_f64());
    }
}
