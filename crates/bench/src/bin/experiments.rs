//! Regenerates every table and figure of the Tapeflow evaluation.
//!
//! ```text
//! experiments all [--scale tiny|small|large] [--csv DIR] [--jobs N] [--json PATH]
//! experiments fig4.1 table4.1 ...
//! ```
//!
//! Simulations fan out over `--jobs` worker threads (default: all
//! cores); tables, CSV and JSON are assembled serially in a fixed order,
//! so every output is byte-identical to a `--jobs 1` run. Alongside the
//! human-readable tables, a machine-readable document with every
//! rendered table plus a canonical per-benchmark configuration sweep is
//! written to `--json PATH` (default `results/BENCH_experiments.json`;
//! pass `--json -` to skip it). The document also carries a `passes`
//! section aggregating compile-pass wall time across every compilation
//! the run performed; `--stable-json` zeroes every wall-clock field so
//! the document is byte-reproducible (CI diffs it against a reference).
//! `--stall-breakdown` re-runs the sweep under the cycle-attribution
//! probe and folds a per-cause `stalls` object into every feasible
//! configuration entry — pure cycle counters, so the fold needs no
//! `--stable-json` scrubbing to stay reproducible. `--hot-spots`
//! likewise folds a `hot_spots` array per entry: the heaviest
//! instructions by attributed PE-cycles, resolved through the IR
//! provenance chain to their source ops, regions and layers. `--host-perf` times
//! the sweep on both simulator engines (event-driven vs legacy scalar)
//! and folds a `host_perf` section in; its wall-derived fields are
//! zeroed under `--stable-json`.

use std::path::PathBuf;
use tapeflow_bench::experiments::{Lab, IDS};
use tapeflow_bench::{hostperf, pool};
use tapeflow_benchmarks::Scale;
use tapeflow_sim::json::Value;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ids: Vec<String> = Vec::new();
    let mut scale = Scale::Small;
    let mut csv_dir: Option<PathBuf> = None;
    let mut jobs = pool::available_jobs();
    let mut json_path: Option<PathBuf> = Some(PathBuf::from("results/BENCH_experiments.json"));
    let mut stable_json = false;
    let mut stall_breakdown = false;
    let mut hot_spots = false;
    let mut host_perf = false;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                let v = it.next().unwrap_or_default();
                scale = match v.as_str() {
                    "tiny" => Scale::Tiny,
                    "small" => Scale::Small,
                    "large" => Scale::Large,
                    other => {
                        eprintln!("unknown scale {other:?} (tiny|small|large)");
                        std::process::exit(2);
                    }
                };
            }
            "--csv" => {
                csv_dir = Some(PathBuf::from(it.next().unwrap_or_else(|| ".".into())));
            }
            "--jobs" => {
                let v = it.next().unwrap_or_default();
                // `0` means "auto" and oversized requests are clamped to
                // a sane pool size (with a stderr note) — results are
                // byte-identical at any job count, so there is nothing
                // to refuse.
                let requested = match v.parse::<usize>() {
                    Ok(n) => n,
                    Err(_) => {
                        eprintln!("--jobs needs an integer, got {v:?}");
                        std::process::exit(2);
                    }
                };
                let (effective, note) = pool::clamp_jobs(requested);
                if let Some(note) = note {
                    eprintln!("{note}");
                }
                jobs = effective;
            }
            "--json" => {
                let v = it.next().unwrap_or_else(|| "-".into());
                json_path = if v == "-" {
                    None
                } else {
                    Some(PathBuf::from(v))
                };
            }
            "--stable-json" => stable_json = true,
            "--stall-breakdown" => stall_breakdown = true,
            "--hot-spots" => hot_spots = true,
            "--host-perf" => host_perf = true,
            "all" => ids.extend(IDS.iter().map(|s| s.to_string())),
            "--help" | "-h" => {
                println!(
                    "usage: experiments [all | <id>...] [--scale tiny|small|large] \
                     [--csv DIR] [--jobs N] [--json PATH|-] [--stable-json] \
                     [--stall-breakdown] [--hot-spots] [--host-perf]"
                );
                println!("ids: {}", IDS.join(" "));
                return;
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        eprintln!(
            "no experiments selected; try `experiments all` (ids: {})",
            IDS.join(" ")
        );
        std::process::exit(2);
    }
    if let Some(bad) = ids.iter().find(|id| !IDS.contains(&id.as_str())) {
        eprintln!("unknown experiment {bad:?} (ids: {})", IDS.join(" "));
        std::process::exit(2);
    }
    if let Some(d) = &csv_dir {
        std::fs::create_dir_all(d).expect("create csv dir");
    }

    let wall = std::time::Instant::now();
    let mut lab = Lab::with_jobs(scale, jobs);
    let mut experiments_json = Vec::new();
    for id in ids {
        let start = std::time::Instant::now();
        let tables = lab.run(&id);
        for (ti, t) in tables.iter().enumerate() {
            println!("{}", t.render());
            if let Some(d) = &csv_dir {
                // Multi-table experiments (the ablations) get one file
                // per table instead of silently overwriting each other.
                let stem = id.replace('.', "_");
                let name = if tables.len() == 1 {
                    format!("{stem}.csv")
                } else {
                    format!("{stem}_{ti}.csv")
                };
                std::fs::write(d.join(name), t.to_csv()).expect("write csv");
            }
        }
        let seconds = start.elapsed().as_secs_f64();
        eprintln!("[{id} done in {seconds:.1}s]\n");
        let mut e = Value::object();
        e.set("id", id.as_str())
            .set(
                "wall_clock_seconds",
                if stable_json { 0.0 } else { seconds },
            )
            .set(
                "tables",
                Value::Arr(tables.iter().map(|t| t.to_json()).collect()),
            );
        experiments_json.push(e);
    }

    if let Some(path) = json_path {
        let sweep = lab
            .json_report_with(stall_breakdown, hot_spots)
            .get("benchmarks")
            .cloned()
            .unwrap_or(Value::Arr(Vec::new()));
        let passes: Vec<Value> = lab
            .pass_wall_totals()
            .into_iter()
            .map(|(name, (runs, wall))| {
                let mut p = Value::object();
                p.set("pass", name).set("runs", runs).set(
                    "seconds",
                    if stable_json { 0.0 } else { wall.as_secs_f64() },
                );
                p
            })
            .collect();
        let mut doc = Value::object();
        doc.set("schema", "tapeflow.bench.experiments/v1")
            .set("scale", format!("{scale:?}"))
            .set("jobs", if stable_json { 0 } else { jobs })
            .set("experiments", Value::Arr(experiments_json))
            .set("passes", Value::Arr(passes))
            .set("benchmarks", sweep);
        if host_perf {
            // Fold the host-throughput sweep in. Under --stable-json the
            // wall-derived fields (seconds, cycles/sec, speedups) are
            // zeroed — only the structure and simulated-cycle totals
            // stay, which are deterministic.
            let start = std::time::Instant::now();
            let results = hostperf::measure(scale, 1, jobs);
            eprintln!(
                "[host-perf sweep done in {:.1}s; geomean speedup {:.2}x]",
                start.elapsed().as_secs_f64(),
                hostperf::geomean_speedup(&results)
            );
            doc.set(
                "host_perf",
                hostperf::host_perf_json(&results, scale, &hostperf::host_meta(jobs), stable_json),
            );
        }
        doc.set(
            "total_wall_clock_seconds",
            if stable_json {
                0.0
            } else {
                wall.elapsed().as_secs_f64()
            },
        );
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir).expect("create json dir");
        }
        std::fs::write(&path, doc.render()).expect("write json");
        eprintln!("[machine-readable results: {}]", path.display());
    }
}
