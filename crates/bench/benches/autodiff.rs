//! Criterion benchmarks for the AD front-end: the differentiate transform
//! itself, under all three tape policies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tapeflow_autodiff::{differentiate, AdOptions, TapePolicy};
use tapeflow_benchmarks::{suite, Scale};

fn bench_differentiate(c: &mut Criterion) {
    let mut group = c.benchmark_group("differentiate");
    group.sample_size(20);
    for bench in suite(Scale::Small) {
        group.bench_with_input(
            BenchmarkId::from_parameter(bench.name),
            &bench,
            |b, bench| {
                let opts = AdOptions::new(bench.wrt.clone(), vec![bench.loss.array]);
                b.iter(|| differentiate(&bench.func, &opts).expect("differentiates"));
            },
        );
    }
    group.finish();
}

fn bench_tape_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("differentiate-policy");
    group.sample_size(20);
    let bench = tapeflow_benchmarks::by_name("mttkrp", Scale::Small);
    for policy in [TapePolicy::Minimal, TapePolicy::Conservative, TapePolicy::All] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{policy:?}")),
            &policy,
            |b, &policy| {
                let opts =
                    AdOptions::new(bench.wrt.clone(), vec![bench.loss.array]).with_policy(policy);
                b.iter(|| differentiate(&bench.func, &opts).expect("differentiates"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_differentiate, bench_tape_policies);
criterion_main!(benches);
