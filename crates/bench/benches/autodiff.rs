//! Micro-benchmarks for the AD front-end: the differentiate transform
//! itself, under all three tape policies.

use tapeflow_autodiff::{differentiate, AdOptions, TapePolicy};
use tapeflow_bench::microbench::Group;
use tapeflow_benchmarks::{suite, Scale};

fn bench_differentiate() {
    let group = Group::new("differentiate", 20);
    for bench in suite(Scale::Small) {
        let opts = AdOptions::new(bench.wrt.clone(), vec![bench.loss.array]);
        group.bench(bench.name, || {
            differentiate(&bench.func, &opts).expect("differentiates")
        });
    }
}

fn bench_tape_policies() {
    let group = Group::new("differentiate-policy", 20);
    let bench = tapeflow_benchmarks::by_name("mttkrp", Scale::Small);
    for policy in [
        TapePolicy::Minimal,
        TapePolicy::Conservative,
        TapePolicy::All,
    ] {
        let opts = AdOptions::new(bench.wrt.clone(), vec![bench.loss.array]).with_policy(policy);
        group.bench(format!("{policy:?}"), || {
            differentiate(&bench.func, &opts).expect("differentiates")
        });
    }
}

fn main() {
    bench_differentiate();
    bench_tape_policies();
}
