//! Micro-benchmarks for the cycle-level simulator: tracing and
//! simulation throughput on the Enzyme and Tapeflow programs.

use tapeflow_bench::microbench::Group;
use tapeflow_benchmarks::{by_name, Scale};
use tapeflow_core::{compile, CompileOptions};
use tapeflow_ir::trace::{trace_function, TraceOptions};
use tapeflow_ir::{ArrayId, Memory};
use tapeflow_sim::{simulate, SimOptions, SystemConfig};

fn traced(name: &str, tapeflow: bool) -> tapeflow_ir::Trace {
    let bench = by_name(name, Scale::Small);
    let grad = bench.gradient();
    let (func, barrier) = if tapeflow {
        let c = compile(&grad, &CompileOptions::default()).expect("compiles");
        (c.func, c.phase_barrier)
    } else {
        (grad.func.clone(), grad.phase_barrier)
    };
    let mut mem = Memory::for_function(&func);
    for i in 0..bench.func.arrays().len() {
        mem.clone_array_from(&bench.mem, ArrayId::new(i));
    }
    mem.set_f64_at(
        grad.shadow_of(bench.loss.array).expect("loss shadow"),
        bench.loss.index,
        1.0,
    );
    trace_function(
        &func,
        &mut mem,
        TraceOptions {
            phase_barrier: Some(barrier),
        },
    )
    .expect("traces")
}

fn bench_simulate() {
    let group = Group::new("simulate", 10);
    for (label, tf) in [("enzyme", false), ("tapeflow", true)] {
        let trace = traced("pathfinder", tf);
        group.bench(format!("pathfinder/{label}"), || {
            simulate(
                &trace,
                &SystemConfig::baseline_32k(),
                &SimOptions::default(),
            )
        });
    }
}

fn bench_trace_extraction() {
    let group = Group::new("trace-extraction", 10);
    for name in ["logsum", "pathfinder", "mttkrp"] {
        group.bench(name, || traced(name, false));
    }
}

fn main() {
    bench_simulate();
    bench_trace_extraction();
}
