//! Micro-benchmarks for the Tapeflow compiler passes: region formation,
//! layering and the rewrite, per benchmark and per scratchpad size.

use tapeflow_bench::microbench::Group;
use tapeflow_benchmarks::{suite, Scale};
use tapeflow_core::{compile, regions, CompileOptions};

fn bench_compile() {
    let group = Group::new("compile-full-pipeline", 10);
    for bench in suite(Scale::Small) {
        let grad = bench.gradient();
        group.bench(bench.name, || {
            compile(&grad, &CompileOptions::default()).expect("compiles")
        });
    }
}

fn bench_region_formation() {
    let group = Group::new("pass1-region-formation", 20);
    for bench in suite(Scale::Small) {
        let grad = bench.gradient();
        group.bench(bench.name, || regions::form_regions(&grad));
    }
}

fn bench_spad_sweep() {
    let group = Group::new("compile-by-spad-size", 10);
    let bench = tapeflow_benchmarks::by_name("pathfinder", Scale::Small);
    let grad = bench.gradient();
    for bytes in [128usize, 512, 2048] {
        group.bench(format!("{bytes}"), || {
            compile(&grad, &CompileOptions::with_spad_bytes(bytes)).expect("compiles")
        });
    }
}

fn main() {
    bench_compile();
    bench_region_formation();
    bench_spad_sweep();
}
