//! Criterion benchmarks for the Tapeflow compiler passes: region
//! formation, layering and the rewrite, per benchmark and per scratchpad
//! size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tapeflow_benchmarks::{suite, Scale};
use tapeflow_core::{compile, regions, CompileOptions};

fn bench_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile-full-pipeline");
    group.sample_size(10);
    for bench in suite(Scale::Small) {
        let grad = bench.gradient();
        group.bench_with_input(
            BenchmarkId::from_parameter(bench.name),
            &grad,
            |b, grad| {
                b.iter(|| compile(grad, &CompileOptions::default()).expect("compiles"));
            },
        );
    }
    group.finish();
}

fn bench_region_formation(c: &mut Criterion) {
    let mut group = c.benchmark_group("pass1-region-formation");
    group.sample_size(20);
    for bench in suite(Scale::Small) {
        let grad = bench.gradient();
        group.bench_with_input(
            BenchmarkId::from_parameter(bench.name),
            &grad,
            |b, grad| {
                b.iter(|| regions::form_regions(grad));
            },
        );
    }
    group.finish();
}

fn bench_spad_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile-by-spad-size");
    group.sample_size(10);
    let bench = tapeflow_benchmarks::by_name("pathfinder", Scale::Small);
    let grad = bench.gradient();
    for bytes in [128usize, 512, 2048] {
        group.bench_with_input(BenchmarkId::from_parameter(bytes), &bytes, |b, &bytes| {
            b.iter(|| compile(&grad, &CompileOptions::with_spad_bytes(bytes)).expect("compiles"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compile, bench_region_formation, bench_spad_sweep);
criterion_main!(benches);
