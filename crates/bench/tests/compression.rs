//! End-to-end guarantees for Pass 5 (`tape-compress`) across the nine
//! paper benchmarks: the compressed build must compute **byte-identical**
//! gradient shadows (the pass only changes how taped values are encoded,
//! never what flows through the REV phase), must never grow the tape,
//! must lint clean, and must cut modeled tape DRAM traffic on at least
//! three benchmarks (the input-rematerialization and width-narrowing
//! opportunities the lint interval analysis finds under the
//! Enzyme-realistic conservative tape policy).

use tapeflow_bench::harness::{Config, Prepared};
use tapeflow_benchmarks::{by_name, Scale, NAMES};
use tapeflow_ir::lint::{self, LintConfig};
use tapeflow_ir::trace::{trace_function, TraceOptions};
use tapeflow_ir::{ArrayId, ArrayKind, Memory};
use tapeflow_sim::SystemConfig;

/// Interprets the compiled build on the benchmark's own inputs and
/// returns every shadow array as raw bits, plus the compiled function
/// for further checks.
fn shadow_bits(p: &mut Prepared, cfg: &Config) -> Vec<(String, Vec<u64>)> {
    let name = p.bench.name;
    let c = p
        .try_compiled(cfg)
        .unwrap_or_else(|e| panic!("{name}: {e}"))
        .clone();
    let mut mem = Memory::for_function(&c.func);
    for i in 0..p.bench.func.arrays().len() {
        mem.clone_array_from(&p.bench.mem, ArrayId::new(i));
    }
    mem.set_f64_at(
        p.grad.shadow_of(p.bench.loss.array).expect("loss shadow"),
        p.bench.loss.index,
        1.0,
    );
    trace_function(
        &c.func,
        &mut mem,
        TraceOptions {
            phase_barrier: Some(c.phase_barrier),
        },
    )
    .unwrap_or_else(|e| panic!("{name}: {e}"));
    c.func
        .arrays_of_kind(ArrayKind::Shadow)
        .map(|a| {
            (
                mem.name_of(a).to_string(),
                mem.get_f64(a).into_iter().map(f64::to_bits).collect(),
            )
        })
        .collect()
}

#[test]
fn compressed_gradients_are_byte_identical_and_cut_tape_traffic() {
    let off_cfg = Config::tapeflow(32 * 1024);
    let on_cfg = Config::tapeflow_compressed(32 * 1024);
    let lint_cfg = LintConfig {
        spad_entries: 128, // the configs' 1 KB scratchpad
        spad_banks: SystemConfig::default().spad.banks,
    };
    let mut compressed = Vec::new();
    let mut reduced = Vec::new();
    for name in NAMES {
        let mut p = Prepared::new(by_name(name, Scale::Tiny));
        let base = shadow_bits(&mut p, &off_cfg);
        let comp = shadow_bits(&mut p, &on_cfg);
        assert_eq!(base, comp, "{name}: compressed gradient drifted");

        let c = p.try_compiled(&on_cfg).expect("feasible").clone();
        let enc = c.encoding.as_ref().expect("compressed build has encoding");
        assert!(
            enc.bytes_after <= enc.bytes_before,
            "{name}: compression grew the tape ({} -> {})",
            enc.bytes_before,
            enc.bytes_after
        );
        if enc.bytes_after < enc.bytes_before {
            compressed.push(name);
        }
        let diags = lint::lint_function(&c.func, &lint_cfg);
        let (errors, _) = lint::counts(&diags);
        assert_eq!(errors, 0, "{name}: compressed build lints dirty: {diags:?}");

        let off = p.sim(&off_cfg, false).dram_bytes();
        let on = p.sim(&on_cfg, false).dram_bytes();
        if on < off {
            reduced.push((name, off, on));
        }
    }
    assert!(
        compressed.len() >= 3,
        "tape-compress shrank the encoded tape on only {compressed:?}"
    );
    assert!(
        reduced.len() >= 3,
        "tape-compress cut DRAM traffic on only {reduced:?} (need >= 3 of {})",
        NAMES.len()
    );
}
