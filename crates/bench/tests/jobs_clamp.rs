//! `--jobs` edge cases must degrade gracefully end to end: `0` means
//! "auto", absurd requests clamp to the 8×-cores cap, and — since the
//! pool only changes scheduling, never results — every normalized count
//! drives the harness to byte-identical output.

use tapeflow_bench::experiments::Lab;
use tapeflow_bench::pool::{available_jobs, clamp_jobs};
use tapeflow_benchmarks::Scale;

#[test]
fn clamped_job_counts_run_and_match_serial_bytes() {
    let (auto, auto_note) = clamp_jobs(0);
    assert_eq!(auto, available_jobs());
    assert!(auto_note.is_some(), "--jobs 0 must explain itself");
    let (capped, cap_note) = clamp_jobs(usize::MAX);
    assert_eq!(capped, available_jobs().saturating_mul(8).max(1));
    assert!(cap_note.is_some(), "oversized --jobs must explain itself");

    let mut serial = Lab::new(Scale::Tiny);
    let reference_table = serial.run("table4.1");
    let reference_json = serial.json_report().render();
    for jobs in [auto, capped] {
        let mut lab = Lab::with_jobs(Scale::Tiny, jobs);
        assert_eq!(lab.jobs(), jobs);
        let tables = lab.run("table4.1");
        assert_eq!(tables.len(), reference_table.len(), "jobs={jobs}");
        for (a, b) in reference_table.iter().zip(&tables) {
            assert_eq!(a.render(), b.render(), "jobs={jobs}: table differs");
        }
        assert_eq!(
            lab.json_report().render(),
            reference_json,
            "jobs={jobs}: sweep JSON differs"
        );
    }
}
