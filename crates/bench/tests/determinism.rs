//! The parallel harness must be invisible in the output: running with
//! any `--jobs` count produces byte-identical tables, CSV and JSON.

use tapeflow_bench::experiments::{Lab, IDS};
use tapeflow_benchmarks::Scale;
use tapeflow_sim::json::Value;
use tapeflow_sim::StallKind;

#[test]
fn four_jobs_byte_identical_to_serial() {
    let mut serial = Lab::new(Scale::Tiny);
    let mut parallel = Lab::with_jobs(Scale::Tiny, 4);
    assert_eq!(serial.jobs(), 1);
    assert_eq!(parallel.jobs(), 4);
    for id in IDS {
        let a = serial.run(id);
        let b = parallel.run(id);
        assert_eq!(a.len(), b.len(), "{id}: table count");
        for (ta, tb) in a.iter().zip(&b) {
            assert_eq!(ta.render(), tb.render(), "{id}: rendered table differs");
            assert_eq!(ta.to_csv(), tb.to_csv(), "{id}: CSV differs");
            assert_eq!(
                ta.to_json().render(),
                tb.to_json().render(),
                "{id}: JSON table differs"
            );
        }
    }
    assert_eq!(
        serial.json_report().render(),
        parallel.json_report().render(),
        "benchmark sweep JSON differs"
    );
}

#[test]
fn stall_breakdown_fold_is_deterministic_and_balanced() {
    let mut serial = Lab::new(Scale::Tiny);
    let mut parallel = Lab::with_jobs(Scale::Tiny, 4);
    let a = serial.json_report_with(true, false).render();
    let b = parallel.json_report_with(true, false).render();
    assert_eq!(a, b, "stall-breakdown sweep differs across job counts");
    let doc = Value::parse(&a).expect("emitted JSON parses");
    let benches = doc
        .get("benchmarks")
        .and_then(Value::as_arr)
        .expect("benchmarks array");
    let mut checked = 0usize;
    for bench in benches {
        let name = bench.get("name").and_then(Value::as_str).expect("name");
        for c in bench
            .get("configs")
            .and_then(Value::as_arr)
            .expect("configs")
        {
            if *c.get("feasible").expect("feasible flag") != Value::Bool(true) {
                assert!(c.get("stalls").is_none(), "{name}: infeasible with stalls");
                continue;
            }
            let stalls = c.get("stalls").expect("feasible entries carry stalls");
            let cycles = stalls
                .get("cycles")
                .and_then(Value::as_u64)
                .expect("cycles");
            let pes = stalls.get("pes").and_then(Value::as_u64).expect("pes");
            let report_cycles = c
                .get("report")
                .and_then(|r| r.get("cycles"))
                .and_then(Value::as_u64)
                .expect("report cycles");
            assert_eq!(cycles, report_cycles, "{name}: probe vs report cycles");
            let attributed: u64 = StallKind::ALL
                .iter()
                .map(|k| stalls.get(k.key()).and_then(Value::as_u64).expect("kind"))
                .sum();
            assert_eq!(
                attributed,
                cycles * pes,
                "{name}: attribution invariant in folded JSON"
            );
            checked += 1;
        }
    }
    assert!(checked > 0, "no feasible entries checked");
}

#[test]
fn hot_spot_fold_is_deterministic_and_names_source_ops() {
    let mut serial = Lab::new(Scale::Tiny);
    let mut parallel = Lab::with_jobs(Scale::Tiny, 4);
    let a = serial.json_report_with(false, true).render();
    let b = parallel.json_report_with(false, true).render();
    assert_eq!(a, b, "hot-spot sweep differs across job counts");
    let doc = Value::parse(&a).expect("emitted JSON parses");
    let benches = doc
        .get("benchmarks")
        .and_then(Value::as_arr)
        .expect("benchmarks array");
    let mut rows_checked = 0usize;
    let mut tape_rows = 0usize;
    for bench in benches {
        let name = bench.get("name").and_then(Value::as_str).expect("name");
        for c in bench
            .get("configs")
            .and_then(Value::as_arr)
            .expect("configs")
        {
            if *c.get("feasible").expect("feasible flag") != Value::Bool(true) {
                assert!(
                    c.get("hot_spots").is_none(),
                    "{name}: infeasible with hot spots"
                );
                continue;
            }
            let spots = c
                .get("hot_spots")
                .and_then(Value::as_arr)
                .expect("feasible entries carry hot spots");
            assert!(!spots.is_empty(), "{name}: empty hot-spot list");
            let mut prev = u64::MAX;
            for s in spots {
                let total = s
                    .get("total_pe_cycles")
                    .and_then(Value::as_u64)
                    .expect("total");
                assert!(total <= prev, "{name}: hot spots not sorted");
                prev = total;
                let op = s.get("op").and_then(Value::as_str).expect("op label");
                if op.starts_with("tape.") {
                    tape_rows += 1;
                    // A tape access in a top row must come attributed:
                    // either a source op or a creating pass.
                    assert!(
                        s.get("source_op").map(|v| *v != Value::Null) == Some(true)
                            || s.get("created_by").and_then(Value::as_str).is_some(),
                        "{name}: naked tape row"
                    );
                }
                rows_checked += 1;
            }
        }
    }
    assert!(rows_checked > 0, "no hot-spot rows checked");
    assert!(tape_rows > 0, "no tape access ever surfaced as a hot spot");
}

#[test]
fn json_report_is_parseable_and_covers_the_suite() {
    let mut lab = Lab::with_jobs(Scale::Tiny, 4);
    let text = lab.json_report().render();
    let doc = Value::parse(&text).expect("emitted JSON parses");
    let benches = doc
        .get("benchmarks")
        .and_then(Value::as_arr)
        .expect("benchmarks array");
    assert_eq!(benches.len(), tapeflow_benchmarks::NAMES.len());
    for b in benches {
        let name = b.get("name").and_then(Value::as_str).expect("name");
        let configs = b.get("configs").and_then(Value::as_arr).expect("configs");
        assert!(!configs.is_empty(), "{name}: no configs");
        let mut any_feasible = false;
        for c in configs {
            let feasible = c.get("feasible").expect("feasible flag");
            if *feasible == Value::Bool(true) {
                any_feasible = true;
                let report = c.get("report").expect("feasible entries carry a report");
                assert!(
                    report.get("cycles").and_then(Value::as_u64).unwrap_or(0) > 0,
                    "{name}: zero-cycle report"
                );
            }
        }
        assert!(any_feasible, "{name}: every configuration infeasible");
    }
}
