//! Cross-engine equivalence: the event-driven core is a performance
//! rework, not a model change, so the legacy scalar loop is kept as the
//! reference oracle and every observable output must match it **byte
//! for byte** — rendered report JSON, stall attributions, and Chrome
//! trace timelines — across all nine paper benchmarks. A probe must
//! also never perturb the simulation it observes, and the incremental
//! re-simulation session must derive exactly the reports a cold run
//! produces.

use std::sync::Arc;
use tapeflow_bench::experiments::Lab;
use tapeflow_bench::harness::{sys_for, Config, Prepared, SweepPlanner};
use tapeflow_benchmarks::{by_name, Scale, NAMES};
use tapeflow_sim::{
    simulate_prepared, try_simulate_probed_with, AttributionProbe, Engine, NoProbe, SimOptions,
    SweepSession, SystemConfig, TraceRecorder,
};

/// Program variants exercised per benchmark: the Enzyme baseline and
/// the Tapeflow build at the default cache, plus a thrash-sized cache
/// so miss/writeback/MSHR paths diverge from the hit path.
fn configs() -> [Config; 3] {
    [
        Config::enzyme(32 * 1024),
        Config::tapeflow(32 * 1024),
        Config::enzyme(4 * 1024),
    ]
}

#[test]
fn reports_attributions_and_traces_match_across_engines() {
    let opts = SimOptions::default();
    let mut compared = 0usize;
    for name in NAMES {
        let mut p = Prepared::new(by_name(name, Scale::Tiny));
        for config in configs() {
            let Some(trace) = p.try_trace_shared(&config) else {
                continue;
            };
            let sys = sys_for(&config);
            let label = format!("{name}/{}", config.label());
            let mut runs = Vec::new();
            for engine in [Engine::Event, Engine::Legacy] {
                // Same pid/name on both engines: the Chrome traces can
                // only differ if the simulated timelines differ.
                let mut probe = (AttributionProbe::new(), TraceRecorder::new(1, name));
                let report = try_simulate_probed_with(engine, &trace, &sys, &opts, &mut probe)
                    .unwrap_or_else(|e| panic!("{label}: {engine:?} failed: {e}"));
                let (attr, recorder) = probe;
                let breakdown = attr.into_breakdown();
                breakdown
                    .check()
                    .unwrap_or_else(|e| panic!("{label}: {engine:?} attribution broke: {e}"));
                runs.push((
                    report.to_json().render(),
                    breakdown.to_json().render(),
                    TraceRecorder::chrome_trace([recorder]).render(),
                ));
            }
            let (legacy, event) = (runs.pop().unwrap(), runs.pop().unwrap());
            assert_eq!(event.0, legacy.0, "{label}: report JSON differs");
            assert_eq!(event.1, legacy.1, "{label}: stall attribution differs");
            assert_eq!(event.2, legacy.2, "{label}: chrome trace differs");
            compared += 1;
        }
    }
    // Every benchmark must contribute at least its Enzyme variants.
    assert!(
        compared >= 2 * NAMES.len(),
        "only {compared} comparisons ran"
    );
}

#[test]
fn probes_do_not_perturb_reports() {
    let opts = SimOptions::default();
    for name in NAMES {
        let mut p = Prepared::new(by_name(name, Scale::Tiny));
        let config = Config::enzyme(32 * 1024);
        let trace = p.try_trace_shared(&config).expect("gradient always traces");
        let sys = sys_for(&config);
        for engine in [Engine::Event, Engine::Legacy] {
            let bare = try_simulate_probed_with(engine, &trace, &sys, &opts, &mut NoProbe)
                .expect("bare run");
            let mut probe = (AttributionProbe::new(), TraceRecorder::new(1, name));
            let probed = try_simulate_probed_with(engine, &trace, &sys, &opts, &mut probe)
                .expect("probed run");
            assert_eq!(
                bare.to_json().render(),
                probed.to_json().render(),
                "{name}: {engine:?} probe perturbed the report"
            );
        }
    }
}

#[test]
fn cross_parameter_sweeps_derive_cold_runs_on_spad_stream_traces() {
    // The generalized session must stay invisible when the sweep
    // perturbs scratchpad and stream parameters — not just cache
    // geometry — on traces that exercise the scratchpad and stream
    // engines (the Tapeflow build). Every derived report must match a
    // cold event run and the legacy oracle byte for byte, and the
    // attribution/timeline artifacts must stay engine-equivalent on
    // every varied system.
    let opts = SimOptions::default();
    let mut exercised = 0usize;
    for name in NAMES {
        let mut p = Prepared::new(by_name(name, Scale::Tiny));
        let config = Config::tapeflow(32 * 1024);
        let Some(trace) = p.try_trace_shared(&config) else {
            continue;
        };
        let prep = p.try_prepared_sim(&config).expect("trace implies arena");
        let base = sys_for(&config);
        let mut systems = vec![base];
        {
            // Cache geometry: replay-validated, may diverge late.
            let mut s = base;
            s.cache.size_bytes = 4 * 1024;
            systems.push(s);
        }
        {
            // Bank count: chains when the bank map agrees, else re-records.
            let mut s = base;
            s.spad.banks = 32;
            systems.push(s);
        }
        {
            // Scratchpad timing: always gates chaining on a spad trace.
            let mut s = base;
            s.spad.banks = 8;
            s.spad.latency = 2;
            systems.push(s);
        }
        {
            // Stream model: gates chaining on a stream trace.
            let mut s = base;
            s.dram.bytes_per_cycle = 4.8;
            s.dram.latency = 200;
            systems.push(s);
        }
        {
            // Energy: recomputed at finalize, never forces a re-record.
            let mut s = base;
            s.energy.dram_pj_per_byte *= 2.0;
            systems.push(s);
        }
        // Return to base: replays whatever recording survived the walk.
        systems.push(base);
        let mut session = SweepSession::new(Arc::clone(&prep), opts);
        for (si, sys) in systems.iter().enumerate() {
            let label = format!("{name}/Tflow[{si}]");
            let derived = session.simulate(sys).to_json().render();
            let event = simulate_prepared(&prep, sys, &opts).to_json().render();
            assert_eq!(derived, event, "{label}: session vs cold event run");
            let mut runs = Vec::new();
            for engine in [Engine::Event, Engine::Legacy] {
                let mut probe = (AttributionProbe::new(), TraceRecorder::new(1, name));
                let report = try_simulate_probed_with(engine, &trace, sys, &opts, &mut probe)
                    .unwrap_or_else(|e| panic!("{label}: {engine:?} failed: {e}"));
                let (attr, recorder) = probe;
                let breakdown = attr.into_breakdown();
                breakdown
                    .check()
                    .unwrap_or_else(|e| panic!("{label}: {engine:?} attribution broke: {e}"));
                runs.push((
                    report.to_json().render(),
                    breakdown.to_json().render(),
                    TraceRecorder::chrome_trace([recorder]).render(),
                ));
            }
            let (legacy, probed) = (runs.pop().unwrap(), runs.pop().unwrap());
            assert_eq!(derived, legacy.0, "{label}: session vs legacy oracle");
            assert_eq!(probed.0, legacy.0, "{label}: report JSON differs");
            assert_eq!(probed.1, legacy.1, "{label}: stall attribution differs");
            assert_eq!(probed.2, legacy.2, "{label}: chrome trace differs");
            exercised += 1;
        }
    }
    assert!(exercised > 0, "no Tapeflow-feasible benchmark ran");
}

#[test]
fn planner_reports_match_cold_runs_at_any_job_count() {
    // The trace-grouped planner over the canonical mixed sweep: every
    // feasible unit's report must match a cold event run and the legacy
    // oracle byte for byte, infeasible units must stay `None` exactly
    // where the cold path finds them infeasible, and re-running with
    // any worker count must reproduce the serial bytes.
    let opts = SimOptions::default();
    for name in NAMES {
        let mut p = Prepared::new(by_name(name, Scale::Tiny));
        let units: Vec<(Config, SystemConfig)> = Lab::json_configs()
            .iter()
            .map(|c| (*c, sys_for(c)))
            .collect();
        let planner = SweepPlanner::new(&mut p, &units, false);
        assert!(
            planner.group_count() > 1,
            "{name}: canonical sweep spans several trace groups"
        );
        let serial = planner.run();
        for ((config, sys), report) in units.iter().zip(&serial) {
            let label = format!("{name}/{}", config.label());
            let cold = p
                .try_prepared_sim(config)
                .map(|prep| simulate_prepared(&prep, sys, &opts));
            match (report, cold) {
                (Some(r), Some(c)) => {
                    let derived = r.to_json().render();
                    assert_eq!(
                        derived,
                        c.to_json().render(),
                        "{label}: planner vs cold event run"
                    );
                    let trace = p
                        .try_trace_shared(config)
                        .expect("feasible unit has a trace");
                    let legacy =
                        try_simulate_probed_with(Engine::Legacy, &trace, sys, &opts, &mut NoProbe)
                            .expect("legacy run");
                    assert_eq!(
                        derived,
                        legacy.to_json().render(),
                        "{label}: planner vs legacy oracle"
                    );
                }
                (None, None) => {}
                (got, want) => panic!(
                    "{label}: feasibility disagrees (planner {}, cold {})",
                    got.is_some(),
                    want.is_some()
                ),
            }
        }
        let serial_bytes: Vec<Option<String>> = serial
            .iter()
            .map(|r| r.as_ref().map(|r| r.to_json().render()))
            .collect();
        for jobs in [2, 4, 7] {
            let par: Vec<Option<String>> = planner
                .run_parallel(jobs)
                .iter()
                .map(|r| r.as_ref().map(|r| r.to_json().render()))
                .collect();
            assert_eq!(
                serial_bytes, par,
                "{name}: planner results differ at jobs={jobs}"
            );
        }
    }
}

#[test]
fn sweep_session_derives_cold_run_reports() {
    // The incremental-resim path (what the harness memo routes sweeps
    // through) must be invisible: every report it derives from the
    // recorded outcome stream must match both a cold event run and the
    // legacy oracle, in an order chosen to force replay hits, late
    // divergences and full re-records.
    let sizes: [usize; 6] = [64 * 1024, 32 * 1024, 16 * 1024, 4 * 1024, 1024, 8 * 1024];
    let opts = SimOptions::default();
    for name in NAMES {
        let mut p = Prepared::new(by_name(name, Scale::Tiny));
        let config = Config::enzyme(sizes[0]);
        let trace = p.try_trace_shared(&config).expect("gradient always traces");
        let prep = p.try_prepared_sim(&config).expect("gradient always preps");
        let mut session = SweepSession::new(Arc::clone(&prep), opts);
        for bytes in sizes {
            let sys = SystemConfig::with_cache_bytes(bytes);
            let derived = session.simulate(&sys).to_json().render();
            let event = simulate_prepared(&prep, &sys, &opts).to_json().render();
            let legacy =
                try_simulate_probed_with(Engine::Legacy, &trace, &sys, &opts, &mut NoProbe)
                    .expect("legacy run")
                    .to_json()
                    .render();
            assert_eq!(derived, event, "{name}@{bytes}: session vs cold event run");
            assert_eq!(derived, legacy, "{name}@{bytes}: session vs legacy oracle");
        }
    }
}
