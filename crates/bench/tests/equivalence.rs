//! Cross-engine equivalence: the event-driven core is a performance
//! rework, not a model change, so the legacy scalar loop is kept as the
//! reference oracle and every observable output must match it **byte
//! for byte** — rendered report JSON, stall attributions, and Chrome
//! trace timelines — across all nine paper benchmarks. A probe must
//! also never perturb the simulation it observes, and the incremental
//! re-simulation session must derive exactly the reports a cold run
//! produces.

use std::sync::Arc;
use tapeflow_bench::harness::{sys_for, Config, Prepared};
use tapeflow_benchmarks::{by_name, Scale, NAMES};
use tapeflow_sim::{
    simulate_prepared, try_simulate_probed_with, AttributionProbe, Engine, NoProbe, SimOptions,
    SweepSession, SystemConfig, TraceRecorder,
};

/// Program variants exercised per benchmark: the Enzyme baseline and
/// the Tapeflow build at the default cache, plus a thrash-sized cache
/// so miss/writeback/MSHR paths diverge from the hit path.
fn configs() -> [Config; 3] {
    [
        Config::enzyme(32 * 1024),
        Config::tapeflow(32 * 1024),
        Config::enzyme(4 * 1024),
    ]
}

#[test]
fn reports_attributions_and_traces_match_across_engines() {
    let opts = SimOptions::default();
    let mut compared = 0usize;
    for name in NAMES {
        let mut p = Prepared::new(by_name(name, Scale::Tiny));
        for config in configs() {
            let Some(trace) = p.try_trace_shared(&config) else {
                continue;
            };
            let sys = sys_for(&config);
            let label = format!("{name}/{}", config.label());
            let mut runs = Vec::new();
            for engine in [Engine::Event, Engine::Legacy] {
                // Same pid/name on both engines: the Chrome traces can
                // only differ if the simulated timelines differ.
                let mut probe = (AttributionProbe::new(), TraceRecorder::new(1, name));
                let report = try_simulate_probed_with(engine, &trace, &sys, &opts, &mut probe)
                    .unwrap_or_else(|e| panic!("{label}: {engine:?} failed: {e}"));
                let (attr, recorder) = probe;
                let breakdown = attr.into_breakdown();
                breakdown
                    .check()
                    .unwrap_or_else(|e| panic!("{label}: {engine:?} attribution broke: {e}"));
                runs.push((
                    report.to_json().render(),
                    breakdown.to_json().render(),
                    TraceRecorder::chrome_trace([recorder]).render(),
                ));
            }
            let (legacy, event) = (runs.pop().unwrap(), runs.pop().unwrap());
            assert_eq!(event.0, legacy.0, "{label}: report JSON differs");
            assert_eq!(event.1, legacy.1, "{label}: stall attribution differs");
            assert_eq!(event.2, legacy.2, "{label}: chrome trace differs");
            compared += 1;
        }
    }
    // Every benchmark must contribute at least its Enzyme variants.
    assert!(
        compared >= 2 * NAMES.len(),
        "only {compared} comparisons ran"
    );
}

#[test]
fn probes_do_not_perturb_reports() {
    let opts = SimOptions::default();
    for name in NAMES {
        let mut p = Prepared::new(by_name(name, Scale::Tiny));
        let config = Config::enzyme(32 * 1024);
        let trace = p.try_trace_shared(&config).expect("gradient always traces");
        let sys = sys_for(&config);
        for engine in [Engine::Event, Engine::Legacy] {
            let bare = try_simulate_probed_with(engine, &trace, &sys, &opts, &mut NoProbe)
                .expect("bare run");
            let mut probe = (AttributionProbe::new(), TraceRecorder::new(1, name));
            let probed = try_simulate_probed_with(engine, &trace, &sys, &opts, &mut probe)
                .expect("probed run");
            assert_eq!(
                bare.to_json().render(),
                probed.to_json().render(),
                "{name}: {engine:?} probe perturbed the report"
            );
        }
    }
}

#[test]
fn sweep_session_derives_cold_run_reports() {
    // The incremental-resim path (what the harness memo routes sweeps
    // through) must be invisible: every report it derives from the
    // recorded outcome stream must match both a cold event run and the
    // legacy oracle, in an order chosen to force replay hits, late
    // divergences and full re-records.
    let sizes: [usize; 6] = [64 * 1024, 32 * 1024, 16 * 1024, 4 * 1024, 1024, 8 * 1024];
    let opts = SimOptions::default();
    for name in NAMES {
        let mut p = Prepared::new(by_name(name, Scale::Tiny));
        let config = Config::enzyme(sizes[0]);
        let trace = p.try_trace_shared(&config).expect("gradient always traces");
        let prep = p.try_prepared_sim(&config).expect("gradient always preps");
        let mut session = SweepSession::new(Arc::clone(&prep), opts);
        for bytes in sizes {
            let sys = SystemConfig::with_cache_bytes(bytes);
            let derived = session.simulate(&sys).to_json().render();
            let event = simulate_prepared(&prep, &sys, &opts).to_json().render();
            let legacy =
                try_simulate_probed_with(Engine::Legacy, &trace, &sys, &opts, &mut NoProbe)
                    .expect("legacy run")
                    .to_json()
                    .render();
            assert_eq!(derived, event, "{name}@{bytes}: session vs cold event run");
            assert_eq!(derived, legacy, "{name}@{bytes}: session vs legacy oracle");
        }
    }
}
