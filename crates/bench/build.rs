//! Captures build provenance for the host-perf report: throughput
//! numbers are meaningless without knowing the compiler and opt-level
//! that produced the binary, so both are baked in as env vars and
//! surfaced in the `host` section of `tapeflow.bench.host_perf/v2`.

fn main() {
    let rustc = std::env::var("RUSTC").unwrap_or_else(|_| "rustc".to_string());
    let version = std::process::Command::new(&rustc)
        .arg("--version")
        .output()
        .ok()
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string());
    println!("cargo:rustc-env=TAPEFLOW_RUSTC_VERSION={version}");
    // Cargo hands the profile's opt-level to build scripts directly.
    let opt = std::env::var("OPT_LEVEL").unwrap_or_else(|_| "unknown".to_string());
    println!("cargo:rustc-env=TAPEFLOW_OPT_LEVEL={opt}");
}
