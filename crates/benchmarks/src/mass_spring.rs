//! `mass_spring` (DiffTaichi suite, irregular): neural-controlled 2-D
//! mass-spring system.
//!
//! Springs connect object pairs through **integer index arrays** — the
//! paper's Figure 2.5 example — and a small two-layer controller produces
//! per-spring actuation from the positions each timestep. Forces
//! accumulate into per-object arrays through indirect stores. Gradients
//! w.r.t. the controller weights. Paper size: 128 objects, hidden 32.

use crate::{det_f64, Benchmark, Scale};
use tapeflow_autodiff::gradcheck::LossSpec;
use tapeflow_ir::{ArrayKind, FunctionBuilder, Memory, Scalar};

/// Builds the benchmark.
pub fn build(scale: Scale) -> Benchmark {
    let (objs, springs, hidden, steps) = match scale {
        Scale::Tiny => (4usize, 6usize, 3usize, 1),
        Scale::Small => (64, 128, 16, 2),
        Scale::Large => (128, 256, 32, 3),
    };
    let mut b = FunctionBuilder::new("mass_spring");
    let px0 = b.array("px0", objs, ArrayKind::Input, Scalar::F64);
    let py0 = b.array("py0", objs, ArrayKind::Input, Scalar::F64);
    let ia = b.array("ia", springs, ArrayKind::Input, Scalar::I64);
    let ib = b.array("ib", springs, ArrayKind::Input, Scalar::I64);
    let rest = b.array("rest", springs, ArrayKind::Input, Scalar::F64);
    let w1 = b.array("W1", hidden * objs, ArrayKind::Input, Scalar::F64);
    let w2 = b.array("W2", springs * hidden, ArrayKind::Input, Scalar::F64);
    let loss = b.array("loss", 1, ArrayKind::Output, Scalar::F64);
    let px = b.array("px", objs, ArrayKind::Temp, Scalar::F64);
    let py = b.array("py", objs, ArrayKind::Temp, Scalar::F64);
    let vx = b.array("vx", objs, ArrayKind::Temp, Scalar::F64);
    let vy = b.array("vy", objs, ArrayKind::Temp, Scalar::F64);
    let fx = b.array("fx", objs, ArrayKind::Temp, Scalar::F64);
    let fy = b.array("fy", objs, ArrayKind::Temp, Scalar::F64);
    let hid = b.array("hid", hidden, ArrayKind::Temp, Scalar::F64);
    let act = b.array("act", springs, ArrayKind::Temp, Scalar::F64);
    let acc = b.cell_f64("acc", 0.0);

    b.for_loop("init", 0, objs as i64, |b, i| {
        let x = b.load(px0, i);
        b.store(px, i, x);
        let y = b.load(py0, i);
        b.store(py, i, y);
    });

    let k_spring = 1.5;
    let dt = 0.02;
    b.for_loop("s", 0, steps, |b, _| {
        // Controller layer 1: hid[h] = tanh(sum_o W1[h,o] * px[o]).
        b.for_loop("h", 0, hidden as i64, |b, h| {
            let zero = b.f64(0.0);
            b.store_cell(acc, zero);
            b.for_loop("o", 0, objs as i64, |b, o| {
                let idx = b.idx2(h, objs as i64, o);
                let w = b.load(w1, idx);
                let p = b.load(px, o);
                let m = b.fmul(w, p);
                let c = b.load_cell(acc);
                let s2 = b.fadd(c, m);
                b.store_cell(acc, s2);
            });
            let pre = b.load_cell(acc);
            let t = b.tanh(pre);
            b.store(hid, h, t);
        });
        // Controller layer 2: act[s] = tanh(sum_h W2[s,h] * hid[h]).
        b.for_loop("sp", 0, springs as i64, |b, sp| {
            let zero = b.f64(0.0);
            b.store_cell(acc, zero);
            b.for_loop("h", 0, hidden as i64, |b, h| {
                let idx = b.idx2(sp, hidden as i64, h);
                let w = b.load(w2, idx);
                let hv = b.load(hid, h);
                let m = b.fmul(w, hv);
                let c = b.load_cell(acc);
                let s2 = b.fadd(c, m);
                b.store_cell(acc, s2);
            });
            let pre = b.load_cell(acc);
            let t = b.tanh(pre);
            b.store(act, sp, t);
        });
        // Zero forces.
        b.for_loop("o", 0, objs as i64, |b, o| {
            let z = b.f64(0.0);
            b.store(fx, o, z);
            b.store(fy, o, z);
        });
        // Spring forces through indirect endpoint indices.
        b.for_loop("sp", 0, springs as i64, |b, sp| {
            let a = b.load(ia, sp);
            let c = b.load(ib, sp);
            let xa = b.load(px, a);
            let xb = b.load(px, c);
            let ya = b.load(py, a);
            let yb = b.load(py, c);
            let dx = b.fsub(xb, xa);
            let dy = b.fsub(yb, ya);
            let dx2 = b.fmul(dx, dx);
            let dy2 = b.fmul(dy, dy);
            let s2 = b.fadd(dx2, dy2);
            let epsv = b.f64(1e-4);
            let d2 = b.fadd(s2, epsv);
            let d = b.sqrt(d2);
            let r = b.load(rest, sp);
            let stretch = b.fsub(d, r);
            let kc = b.f64(k_spring);
            let base = b.fmul(kc, stretch);
            let av = b.load(act, sp);
            let mag = b.fadd(base, av);
            let ux = b.fdiv(dx, d);
            let uy = b.fdiv(dy, d);
            let fxs = b.fmul(mag, ux);
            let fys = b.fmul(mag, uy);
            // Accumulate onto both endpoints (indirect read-modify-write).
            let fa = b.load(fx, a);
            let fa2 = b.fadd(fa, fxs);
            b.store(fx, a, fa2);
            let fb = b.load(fx, c);
            let fb2 = b.fsub(fb, fxs);
            b.store(fx, c, fb2);
            let ga = b.load(fy, a);
            let ga2 = b.fadd(ga, fys);
            b.store(fy, a, ga2);
            let gb = b.load(fy, c);
            let gb2 = b.fsub(gb, fys);
            b.store(fy, c, gb2);
        });
        // Integrate.
        b.for_loop("o", 0, objs as i64, |b, o| {
            let dtv = b.f64(dt);
            for (vel, force, pos) in [(vx, fx, px), (vy, fy, py)] {
                let v = b.load(vel, o);
                let f = b.load(force, o);
                let dv = b.fmul(dtv, f);
                let nv = b.fadd(v, dv);
                b.store(vel, o, nv);
                let p = b.load(pos, o);
                let dp = b.fmul(dtv, nv);
                let np = b.fadd(p, dp);
                b.store(pos, o, np);
            }
        });
    });
    b.for_loop("o", 0, objs as i64, |b, o| {
        let x = b.load(px, o);
        let y = b.load(py, o);
        let x2 = b.fmul(x, x);
        let y2 = b.fmul(y, y);
        let t = b.fadd(x2, y2);
        let c = b.load_cell(loss);
        let s = b.fadd(c, t);
        b.store_cell(loss, s);
    });
    let func = b.finish();
    let mut mem = Memory::for_function(&func);
    mem.set_f64(px0, &det_f64(0x901, objs, -1.0, 1.0));
    mem.set_f64(py0, &det_f64(0x902, objs, -1.0, 1.0));
    mem.set_f64(rest, &det_f64(0x903, springs, 0.4, 1.2));
    mem.set_f64(w1, &det_f64(0x904, hidden * objs, -0.4, 0.4));
    mem.set_f64(w2, &det_f64(0x905, springs * hidden, -0.4, 0.4));
    // Spring topology: a ring plus deterministic chords.
    let a_idx: Vec<i64> = (0..springs).map(|s| (s % objs) as i64).collect();
    let b_idx: Vec<i64> = (0..springs)
        .map(|s| ((s + 1 + s / objs) % objs) as i64)
        .collect();
    mem.set_i64(ia, &a_idx);
    mem.set_i64(ib, &b_idx);
    Benchmark {
        name: "mass_spring",
        suite: "DiffTaichi",
        regular: false,
        params: format!("Obj:{objs}, springs:{springs}, hidden:{hidden}"),
        func,
        mem,
        wrt: vec![w1, w2],
        loss: LossSpec::cell(loss),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapeflow_autodiff::gradcheck::check_gradient;

    #[test]
    fn gradient_checks() {
        let b = build(Scale::Tiny);
        let g = b.gradient();
        check_gradient(&b.func, &g, &b.mem, &b.wrt, b.loss, 1e-6, 2e-4, 1e-7).unwrap();
    }

    #[test]
    fn indirect_topology_is_differentiable() {
        // The endpoint index arrays are i64 inputs; the reverse pass
        // reloads them (Recompute) rather than taping them.
        let b = build(Scale::Tiny);
        let g = b.gradient();
        assert!(g.stats.recomputed_values > 0);
        assert!(g.stats.taped_values > 0);
    }
}
