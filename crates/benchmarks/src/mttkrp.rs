//! `mttkrp` (Taco suite, irregular): matricized tensor times Khatri-Rao
//! product.
//!
//! `A[i,j] = Σ_k Σ_l B[i,k,l]·C[k,j]·D[l,j]`, `loss = Σ A²`, gradients
//! w.r.t. B, C and D. Four nested loops touching four tensors per
//! innermost iteration — the paper's most conflict-heavy kernel (14×
//! DRAM-traffic improvement). Paper size: 8×8×8.

use crate::{det_lattice, Benchmark, Scale};
use tapeflow_autodiff::gradcheck::LossSpec;
use tapeflow_ir::{ArrayKind, DeclRange, FunctionBuilder, Memory, Scalar};

/// Count-valued tensor data (Taco's MTTKRP operates on sparse count
/// tensors): strictly positive small integers, declared as a quantized
/// range so taped products and accumulator sums narrow.
const COUNTS: DeclRange = DeclRange::Float {
    lo: 1.0,
    hi: 4.0,
    quantized: true,
};

/// Builds the benchmark.
pub fn build(scale: Scale) -> Benchmark {
    let d = match scale {
        Scale::Tiny => 3usize,
        Scale::Small => 8,
        Scale::Large => 12,
    };
    let (ni, nj, nk, nl) = (d, d, d, d);
    let mut b = FunctionBuilder::new("mttkrp");
    let tb = b.array_ranged("B", ni * nk * nl, ArrayKind::Input, Scalar::F64, COUNTS);
    let tc = b.array_ranged("C", nk * nj, ArrayKind::Input, Scalar::F64, COUNTS);
    let td = b.array_ranged("D", nl * nj, ArrayKind::Input, Scalar::F64, COUNTS);
    let loss = b.array("loss", 1, ArrayKind::Output, Scalar::F64);
    let acc = b.cell_f64("acc", 0.0);
    b.for_loop("i", 0, ni as i64, |b, i| {
        b.for_loop("j", 0, nj as i64, |b, j| {
            let zero = b.f64(0.0);
            b.store_cell(acc, zero);
            b.for_loop("k", 0, nk as i64, |b, k| {
                b.for_loop("l", 0, nl as i64, |b, l| {
                    let bidx = b.idx3(i, nk as i64, k, nl as i64, l);
                    let bv = b.load(tb, bidx);
                    let cidx = b.idx2(k, nj as i64, j);
                    let cv = b.load(tc, cidx);
                    let didx = b.idx2(l, nj as i64, j);
                    let dv = b.load(td, didx);
                    let p1 = b.fmul(bv, cv);
                    let p2 = b.fmul(p1, dv);
                    let c = b.load_cell(acc);
                    let s = b.fadd(c, p2);
                    b.store_cell(acc, s);
                });
            });
            let aij = b.load_cell(acc);
            let sq = b.fmul(aij, aij);
            let c = b.load_cell(loss);
            let s = b.fadd(c, sq);
            b.store_cell(loss, s);
        });
    });
    let func = b.finish();
    let mut mem = Memory::for_function(&func);
    mem.set_f64(tb, &det_lattice(0x501, ni * nk * nl, 1, 4));
    mem.set_f64(tc, &det_lattice(0x502, nk * nj, 1, 4));
    mem.set_f64(td, &det_lattice(0x503, nl * nj, 1, 4));
    Benchmark {
        name: "mttkrp",
        suite: "Taco",
        regular: false,
        params: format!("{d}x{d}x{d}"),
        func,
        mem,
        wrt: vec![tb, tc, td],
        loss: LossSpec::cell(loss),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapeflow_autodiff::gradcheck::check_gradient;

    #[test]
    fn gradient_checks() {
        let b = build(Scale::Tiny);
        let g = b.gradient();
        check_gradient(&b.func, &g, &b.mem, &b.wrt, b.loss, 1e-6, 1e-4, 1e-8).unwrap();
    }

    #[test]
    fn four_deep_nest_produces_deep_region() {
        let b = build(Scale::Tiny);
        let g = b.gradient();
        let max_path = g.tapes.iter().map(|t| t.fwd_loop_path.len()).max().unwrap();
        assert_eq!(max_path, 4, "innermost tape sits under i,j,k,l");
    }
}
