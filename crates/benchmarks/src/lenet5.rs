//! `lenet5` (LeNet, irregular): a scaled LeNet-style network.
//!
//! Valid 5×5 convolution (several feature maps) → tanh → 2×2 average
//! pool → fully connected layer → squared error. Gradients w.r.t. the
//! convolution and FC weights. The deep imperfect nest with four-tensor
//! inner loops is what the paper classifies as irregular.

use crate::{det_f64, det_lattice, Benchmark, Scale};
use tapeflow_autodiff::gradcheck::LossSpec;
use tapeflow_ir::{ArrayKind, DeclRange, FunctionBuilder, Memory, Scalar};

/// Builds the benchmark.
pub fn build(scale: Scale) -> Benchmark {
    let (img, maps, ksz, classes) = match scale {
        Scale::Tiny => (7usize, 2usize, 3usize, 2usize),
        Scale::Small => (16, 4, 5, 10),
        Scale::Large => (28, 6, 5, 10),
    };
    let conv = img - ksz + 1; // valid convolution output
    let pool = conv / 2; // 2x2 average pooling (conv is even at our sizes or truncates)
    let mut b = FunctionBuilder::new("lenet5");
    // Binarized input image on the ternary pixel lattice {-1, 0, 1}: a
    // quantized contract the value-range analysis seeds from and the
    // dynamic oracle checks.
    let x = b.array_ranged(
        "img",
        img * img,
        ArrayKind::Input,
        Scalar::F64,
        DeclRange::Float {
            lo: -1.0,
            hi: 1.0,
            quantized: true,
        },
    );
    let wc = b.array("wc", maps * ksz * ksz, ArrayKind::Input, Scalar::F64);
    let wf = b.array(
        "wf",
        classes * maps * pool * pool,
        ArrayKind::Input,
        Scalar::F64,
    );
    let target = b.array("t", classes, ArrayKind::Input, Scalar::F64);
    let feat = b.array("feat", maps * conv * conv, ArrayKind::Temp, Scalar::F64);
    let pooled = b.array("pool", maps * pool * pool, ArrayKind::Temp, Scalar::F64);
    let loss = b.array("loss", 1, ArrayKind::Output, Scalar::F64);
    let acc = b.cell_f64("acc", 0.0);
    let (imgi, convi, ki, pooli) = (img as i64, conv as i64, ksz as i64, pool as i64);

    // Convolution + tanh.
    b.for_loop("m", 0, maps as i64, |b, m| {
        b.for_loop("oy", 0, convi, |b, oy| {
            b.for_loop("ox", 0, convi, |b, ox| {
                let zero = b.f64(0.0);
                b.store_cell(acc, zero);
                b.for_loop("ky", 0, ki, |b, ky| {
                    b.for_loop("kx", 0, ki, |b, kx| {
                        let iy = b.iadd(oy, ky);
                        let ix = b.iadd(ox, kx);
                        let iidx = b.idx2(iy, imgi, ix);
                        let iv = b.load(x, iidx);
                        let widx = b.idx3(m, ki, ky, ki, kx);
                        let wv = b.load(wc, widx);
                        let p = b.fmul(iv, wv);
                        let c = b.load_cell(acc);
                        let s = b.fadd(c, p);
                        b.store_cell(acc, s);
                    });
                });
                let pre = b.load_cell(acc);
                let act = b.tanh(pre);
                let fidx = b.idx3(m, convi, oy, convi, ox);
                b.store(feat, fidx, act);
            });
        });
    });
    // 2x2 average pooling.
    b.for_loop("m", 0, maps as i64, |b, m| {
        b.for_loop("py", 0, pooli, |b, py| {
            b.for_loop("px", 0, pooli, |b, px| {
                let two = b.i64(2);
                let y0 = b.imul(py, two);
                let x0 = b.imul(px, two);
                let one = b.i64(1);
                let y1 = b.iadd(y0, one);
                let x1 = b.iadd(x0, one);
                let mut sum = None;
                for (yy, xx) in [(y0, x0), (y0, x1), (y1, x0), (y1, x1)] {
                    let idx = b.idx3(m, convi, yy, convi, xx);
                    let v = b.load(feat, idx);
                    sum = Some(match sum {
                        None => v,
                        Some(s) => b.fadd(s, v),
                    });
                }
                let quarter = b.f64(0.25);
                let avg = b.fmul(sum.expect("four taps"), quarter);
                let pidx = b.idx3(m, pooli, py, pooli, px);
                b.store(pooled, pidx, avg);
            });
        });
    });
    // Fully connected + squared error.
    let fc_in = (maps * pool * pool) as i64;
    b.for_loop("c", 0, classes as i64, |b, cls| {
        let zero = b.f64(0.0);
        b.store_cell(acc, zero);
        b.for_loop("u", 0, fc_in, |b, u| {
            let widx = b.idx2(cls, fc_in, u);
            let wv = b.load(wf, widx);
            let pv = b.load(pooled, u);
            let p = b.fmul(wv, pv);
            let c = b.load_cell(acc);
            let s = b.fadd(c, p);
            b.store_cell(acc, s);
        });
        let o = b.load_cell(acc);
        let tv = b.load(target, cls);
        let e = b.fsub(o, tv);
        let e2 = b.fmul(e, e);
        let c = b.load_cell(loss);
        let s = b.fadd(c, e2);
        b.store_cell(loss, s);
    });
    let func = b.finish();
    let mut mem = Memory::for_function(&func);
    mem.set_f64(x, &det_lattice(0x801, img * img, -1, 1));
    mem.set_f64(wc, &det_f64(0x802, maps * ksz * ksz, -0.4, 0.4));
    mem.set_f64(wf, &det_f64(0x803, classes * maps * pool * pool, -0.3, 0.3));
    mem.set_f64(target, &det_f64(0x804, classes, -1.0, 1.0));
    Benchmark {
        name: "lenet5",
        suite: "LeNet",
        regular: false,
        params: format!("img {img}x{img}, maps {maps}, k {ksz}, classes {classes}"),
        func,
        mem,
        wrt: vec![wc, wf],
        loss: LossSpec::cell(loss),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapeflow_autodiff::gradcheck::check_gradient;

    #[test]
    fn gradient_checks() {
        let b = build(Scale::Tiny);
        let g = b.gradient();
        check_gradient(&b.func, &g, &b.mem, &b.wrt, b.loss, 1e-6, 1e-4, 1e-8).unwrap();
    }

    #[test]
    fn tape_includes_activations() {
        let b = build(Scale::Tiny);
        let g = b.gradient();
        // tanh results and FC inputs must be taped.
        assert!(g.tape_elems() > 0);
        assert!(g.stats.taped_values >= 2);
    }
}
