//! `logsum` (Enzyme suite, regular): log-sum-exp reduction.
//!
//! `loss = ln(Σ_i exp(x_i))` — a single stride-1 loop; the per-iteration
//! `exp` results form the tape. The paper's input is 10 K elements.

use crate::{det_f64, Benchmark, Scale};
use tapeflow_autodiff::gradcheck::LossSpec;
use tapeflow_ir::{ArrayKind, FunctionBuilder, Memory, Scalar};

/// Builds the benchmark.
pub fn build(scale: Scale) -> Benchmark {
    let n = match scale {
        Scale::Tiny => 24,
        Scale::Small => 1024,
        Scale::Large => 10_000,
    };
    let mut b = FunctionBuilder::new("logsum");
    let x = b.array("x", n, ArrayKind::Input, Scalar::F64);
    let loss = b.array("loss", 1, ArrayKind::Output, Scalar::F64);
    let acc = b.cell_f64("acc", 0.0);
    b.for_loop("i", 0, n as i64, |b, i| {
        let xi = b.load(x, i);
        let e = b.exp(xi);
        let c = b.load_cell(acc);
        let s = b.fadd(c, e);
        b.store_cell(acc, s);
    });
    let total = b.load_cell(acc);
    let u = b.ln(total);
    b.store_cell(loss, u);
    let func = b.finish();
    let mut mem = Memory::for_function(&func);
    mem.set_f64(x, &det_f64(0x105, n, -2.0, 2.0));
    Benchmark {
        name: "logsum",
        suite: "Enzyme",
        regular: true,
        params: format!("Input: {n}"),
        func,
        mem,
        wrt: vec![x],
        loss: LossSpec::cell(loss),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapeflow_autodiff::gradcheck::check_gradient;

    #[test]
    fn gradient_checks() {
        let b = build(Scale::Tiny);
        let g = b.gradient();
        check_gradient(&b.func, &g, &b.mem, &b.wrt, b.loss, 1e-6, 1e-4, 1e-8).unwrap();
    }

    #[test]
    fn gradient_is_softmax() {
        // d loss / d x_i = softmax(x)_i — a known closed form.
        let b = build(Scale::Tiny);
        let g = b.gradient();
        let mut mem = b.gradient_memory(&g);
        tapeflow_ir::interp::run(&g.func, &mut mem).unwrap();
        let d = mem.get_f64(g.shadow_of(b.wrt[0]).unwrap());
        let xs = b.mem.get_f64(b.wrt[0]);
        let z: f64 = xs.iter().map(|v| v.exp()).sum();
        for (di, xi) in d.iter().zip(&xs) {
            assert!((di - xi.exp() / z).abs() < 1e-12);
        }
        let total: f64 = d.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "softmax sums to 1");
    }
}
