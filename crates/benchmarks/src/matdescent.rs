//! `matdescent` (Enzyme suite, regular): matrix-descent residual.
//!
//! `loss = ‖A·x − b‖²` with gradients w.r.t. both `A` and `x` — the
//! streaming matrix-vector kernel the paper lists at M,N = 400.

use crate::{det_lattice, Benchmark, Scale};
use tapeflow_autodiff::gradcheck::LossSpec;
use tapeflow_ir::{ArrayKind, DeclRange, FunctionBuilder, Memory, Scalar};

/// Quantized integer lattice for an input array: strictly positive
/// values keep every residual (and therefore every gradient entry)
/// bounded away from zero, which keeps finite differencing well above
/// its noise floor.
const fn lattice(lo: i64, hi: i64) -> DeclRange {
    DeclRange::Float {
        lo: lo as f64,
        hi: hi as f64,
        quantized: true,
    }
}

/// Builds the benchmark.
pub fn build(scale: Scale) -> Benchmark {
    let (m, n) = match scale {
        Scale::Tiny => (6, 5),
        Scale::Small => (64, 64),
        Scale::Large => (200, 200),
    };
    let mut b = FunctionBuilder::new("matdescent");
    let a = b.array_ranged("A", m * n, ArrayKind::Input, Scalar::F64, lattice(1, 3));
    let x = b.array_ranged("x", n, ArrayKind::Input, Scalar::F64, lattice(1, 2));
    let rhs = b.array_ranged("b", m, ArrayKind::Input, Scalar::F64, lattice(1, 4));
    let loss = b.array("loss", 1, ArrayKind::Output, Scalar::F64);
    let row = b.cell_f64("row", 0.0);
    b.for_loop("i", 0, m as i64, |b, i| {
        let zero = b.f64(0.0);
        b.store_cell(row, zero);
        b.for_loop("j", 0, n as i64, |b, j| {
            let idx = b.idx2(i, n as i64, j);
            let aij = b.load(a, idx);
            let xj = b.load(x, j);
            let p = b.fmul(aij, xj);
            let c = b.load_cell(row);
            let s = b.fadd(c, p);
            b.store_cell(row, s);
        });
        let r = b.load_cell(row);
        let bi = b.load(rhs, i);
        let e = b.fsub(r, bi);
        let e2 = b.fmul(e, e);
        let c = b.load_cell(loss);
        let s = b.fadd(c, e2);
        b.store_cell(loss, s);
    });
    let func = b.finish();
    let mut mem = Memory::for_function(&func);
    mem.set_f64(a, &det_lattice(0x20A, m * n, 1, 3));
    mem.set_f64(x, &det_lattice(0x20B, n, 1, 2));
    mem.set_f64(rhs, &det_lattice(0x20C, m, 1, 4));
    Benchmark {
        name: "matdescent",
        suite: "Enzyme",
        regular: true,
        params: format!("M,N: {m},{n}"),
        func,
        mem,
        wrt: vec![a, x],
        loss: LossSpec::cell(loss),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapeflow_autodiff::gradcheck::check_gradient;

    #[test]
    fn gradient_checks() {
        let b = build(Scale::Tiny);
        let g = b.gradient();
        check_gradient(&b.func, &g, &b.mem, &b.wrt, b.loss, 1e-6, 1e-4, 1e-8).unwrap();
    }

    #[test]
    fn gradient_matches_normal_equations() {
        // dL/dA = 2 (A x - b) x^T ; dL/dx = 2 A^T (A x - b).
        let bm = build(Scale::Tiny);
        let g = bm.gradient();
        let mut mem = bm.gradient_memory(&g);
        tapeflow_ir::interp::run(&g.func, &mut mem).unwrap();
        let (m, n) = (6usize, 5usize);
        let a = bm.mem.get_f64(bm.wrt[0]);
        let x = bm.mem.get_f64(bm.wrt[1]);
        let rhs = bm.mem.get_f64(tapeflow_ir::ArrayId::new(2));
        let residual: Vec<f64> = (0..m)
            .map(|i| (0..n).map(|j| a[i * n + j] * x[j]).sum::<f64>() - rhs[i])
            .collect();
        let da = mem.get_f64(g.shadow_of(bm.wrt[0]).unwrap());
        let dx = mem.get_f64(g.shadow_of(bm.wrt[1]).unwrap());
        for i in 0..m {
            for j in 0..n {
                assert!((da[i * n + j] - 2.0 * residual[i] * x[j]).abs() < 1e-10);
            }
        }
        for j in 0..n {
            let want: f64 = (0..m).map(|i| 2.0 * a[i * n + j] * residual[i]).sum();
            assert!((dx[j] - want).abs() < 1e-10);
        }
    }
}
