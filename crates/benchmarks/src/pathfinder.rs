//! `pathfinder` (RiVEC suite, irregular): dynamic programming over a
//! cost grid.
//!
//! `dst[c] = w[r,c] + min(src[c-1], src[c], src[c+1])` with clamped
//! column indices, rows pipelined through two buffers; `loss = Σ` of the
//! final row, gradient w.r.t. the weight grid (min routes gradients
//! sparsely — the paper's data-dependent dataflow case). Paper size:
//! R 128, C 256.

use crate::{det_lattice, Benchmark, Scale};
use tapeflow_autodiff::gradcheck::LossSpec;
use tapeflow_ir::{ArrayKind, DeclRange, FunctionBuilder, Memory, Scalar};

/// The cost grid holds sensor readings quantized to 16-bit levels; the
/// wide lattice keeps `fmin` ties (which the min's gradient routing
/// cannot disambiguate) vanishingly rare while the declared range still
/// narrows taped path sums to 2-3 bytes.
const COST_LEVELS: i64 = 65535;

/// Builds the benchmark with explicit dimensions.
pub fn build_sized(rows: usize, cols: usize) -> Benchmark {
    let mut b = FunctionBuilder::new("pathfinder");
    let w = b.array_ranged(
        "w",
        rows * cols,
        ArrayKind::Input,
        Scalar::F64,
        DeclRange::Float {
            lo: 0.0,
            hi: COST_LEVELS as f64,
            quantized: true,
        },
    );
    let loss = b.array("loss", 1, ArrayKind::Output, Scalar::F64);
    let src = b.array("src", cols, ArrayKind::Temp, Scalar::F64);
    let dst = b.array("dst", cols, ArrayKind::Temp, Scalar::F64);
    let ncols = cols as i64;
    b.for_loop("c0", 0, ncols, |b, c| {
        let v = b.load(w, c);
        b.store(src, c, v);
    });
    b.for_loop("r", 1, rows as i64, |b, r| {
        b.for_loop("c", 0, ncols, |b, c| {
            let zero = b.i64(0);
            let maxc = b.i64(ncols - 1);
            let m1 = b.i64(-1);
            let p1 = b.i64(1);
            let lo = b.iadd(c, m1);
            let lo = b.imax(lo, zero);
            let hi = b.iadd(c, p1);
            let hi = b.imin(hi, maxc);
            let a = b.load(src, lo);
            let m = b.load(src, c);
            let z = b.load(src, hi);
            let m2 = b.fmin(a, m);
            let m3 = b.fmin(m2, z);
            let idx = b.idx2(r, ncols, c);
            let wi = b.load(w, idx);
            let s = b.fadd(wi, m3);
            b.store(dst, c, s);
        });
        b.for_loop("cp", 0, ncols, |b, c| {
            let v = b.load(dst, c);
            b.store(src, c, v);
        });
    });
    b.for_loop("cf", 0, ncols, |b, c| {
        let v = b.load(src, c);
        let cu = b.load_cell(loss);
        let s = b.fadd(cu, v);
        b.store_cell(loss, s);
    });
    let func = b.finish();
    let mut mem = Memory::for_function(&func);
    mem.set_f64(w, &det_lattice(0x701, rows * cols, 0, COST_LEVELS));
    Benchmark {
        name: "pathfinder",
        suite: "RiVEC",
        regular: false,
        params: format!("R:{rows}, C:{cols}"),
        func,
        mem,
        wrt: vec![w],
        loss: LossSpec::cell(loss),
    }
}

/// Builds the benchmark at a preset scale.
pub fn build(scale: Scale) -> Benchmark {
    let (rows, cols) = match scale {
        Scale::Tiny => (4, 7),
        Scale::Small => (32, 64),
        Scale::Large => (128, 256),
    };
    build_sized(rows, cols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapeflow_autodiff::gradcheck::check_gradient;

    #[test]
    fn gradient_checks() {
        let b = build(Scale::Tiny);
        let g = b.gradient();
        check_gradient(&b.func, &g, &b.mem, &b.wrt, b.loss, 1e-6, 1e-4, 1e-8).unwrap();
    }

    #[test]
    fn forward_matches_reference_dp() {
        let (rows, cols) = (4usize, 7usize);
        let b = build(Scale::Tiny);
        let mut mem = b.mem.clone();
        tapeflow_ir::interp::run(&b.func, &mut mem).unwrap();
        let got = mem.get_f64_at(b.loss.array, 0);
        // Reference DP in plain Rust.
        let w = b.mem.get_f64(b.wrt[0]);
        let mut src: Vec<f64> = w[..cols].to_vec();
        for r in 1..rows {
            let mut dst = vec![0.0; cols];
            for c in 0..cols {
                let lo = c.saturating_sub(1);
                let hi = (c + 1).min(cols - 1);
                dst[c] = w[r * cols + c] + src[lo].min(src[c]).min(src[hi]);
            }
            src = dst;
        }
        let want: f64 = src.iter().sum();
        assert!((got - want).abs() < 1e-12);
    }

    #[test]
    fn min_routing_gives_sparse_gradient() {
        // Each final-row cell routes through exactly one path; many grid
        // weights get zero gradient.
        let b = build(Scale::Tiny);
        let g = b.gradient();
        let mut mem = b.gradient_memory(&g);
        tapeflow_ir::interp::run(&g.func, &mut mem).unwrap();
        let d = mem.get_f64(g.shadow_of(b.wrt[0]).unwrap());
        let zeros = d.iter().filter(|&&x| x == 0.0).count();
        assert!(zeros > 0, "min gradient routing must zero some paths");
        // Last row contributes 1 per column.
        let cols = 7;
        assert!(d[d.len() - cols..].iter().all(|&x| (x - 1.0).abs() < 1e-12));
    }
}
