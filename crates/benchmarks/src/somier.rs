//! `somier` (RiVEC suite, irregular): 3-D spring-mesh relaxation.
//!
//! An n³ grid of masses; each feels spring forces from its six lattice
//! neighbours (boundary indices clamp to the node itself, yielding zero
//! force — the irregular index math of the original stencil). Explicit
//! Euler over a few steps; `loss = Σ u²`, gradient w.r.t. the initial
//! displacements. Paper size: 8×8×8.

use crate::{det_f64, Benchmark, Scale};
use tapeflow_autodiff::gradcheck::LossSpec;
use tapeflow_ir::{ArrayKind, FunctionBuilder, Memory, Scalar};

/// Builds the benchmark.
pub fn build(scale: Scale) -> Benchmark {
    let (n, steps) = match scale {
        Scale::Tiny => (3usize, 1),
        Scale::Small => (12, 2),
        Scale::Large => (10, 3),
    };
    let total = n * n * n;
    let mut b = FunctionBuilder::new("somier");
    let u0 = b.array("u0", total, ArrayKind::Input, Scalar::F64);
    let loss = b.array("loss", 1, ArrayKind::Output, Scalar::F64);
    let u = b.array("u", total, ArrayKind::Temp, Scalar::F64);
    let v = b.array("v", total, ArrayKind::Temp, Scalar::F64);
    let f = b.array("f", total, ArrayKind::Temp, Scalar::F64);

    b.for_loop("init", 0, total as i64, |b, i| {
        let x = b.load(u0, i);
        b.store(u, i, x);
    });

    let k_spring = 0.8;
    let dt = 0.05;
    let nn = n as i64;
    b.for_loop("s", 0, steps, |b, _| {
        // Forces from the six clamped neighbours.
        b.for_loop("x", 0, nn, |b, x| {
            b.for_loop("y", 0, nn, |b, y| {
                b.for_loop("z", 0, nn, |b, z| {
                    let idx = b.idx3(x, nn, y, nn, z);
                    let ui = b.load(u, idx);
                    let fcell = b.cell_f64("facc", 0.0);
                    let zero = b.f64(0.0);
                    b.store_cell(fcell, zero);
                    let zero_i = b.i64(0);
                    let max_i = b.i64(nn - 1);
                    // (axis value, delta) for the six neighbours.
                    for axis in 0..3 {
                        for delta in [-1i64, 1] {
                            let d = b.i64(delta);
                            let (cx, cy, cz) = match axis {
                                0 => {
                                    let nx = b.iadd(x, d);
                                    let nx = b.imax(nx, zero_i);
                                    let nx = b.imin(nx, max_i);
                                    (nx, y, z)
                                }
                                1 => {
                                    let ny = b.iadd(y, d);
                                    let ny = b.imax(ny, zero_i);
                                    let ny = b.imin(ny, max_i);
                                    (x, ny, z)
                                }
                                _ => {
                                    let nz = b.iadd(z, d);
                                    let nz = b.imax(nz, zero_i);
                                    let nz = b.imin(nz, max_i);
                                    (x, y, nz)
                                }
                            };
                            let nidx = b.idx3(cx, nn, cy, nn, cz);
                            let un = b.load(u, nidx);
                            let diff = b.fsub(un, ui);
                            // Stiffening spring (the original somier's
                            // force law is nonlinear in the extension):
                            // F = k * diff * sqrt(diff^2 + eps).
                            let d2 = b.fmul(diff, diff);
                            let epsv = b.f64(1e-3);
                            let d2e = b.fadd(d2, epsv);
                            let mag = b.sqrt(d2e);
                            let kc = b.f64(k_spring);
                            let kd = b.fmul(kc, diff);
                            let contrib = b.fmul(kd, mag);
                            let c = b.load_cell(fcell);
                            let s = b.fadd(c, contrib);
                            b.store_cell(fcell, s);
                        }
                    }
                    let force = b.load_cell(fcell);
                    b.store(f, idx, force);
                });
            });
        });
        // Integrate.
        b.for_loop("i", 0, total as i64, |b, i| {
            let dtv = b.f64(dt);
            let vi = b.load(v, i);
            let fi = b.load(f, i);
            let dv = b.fmul(dtv, fi);
            let nv = b.fadd(vi, dv);
            b.store(v, i, nv);
            let ui = b.load(u, i);
            let du = b.fmul(dtv, nv);
            let nu = b.fadd(ui, du);
            b.store(u, i, nu);
        });
    });
    b.for_loop("i", 0, total as i64, |b, i| {
        let ui = b.load(u, i);
        let sq = b.fmul(ui, ui);
        let c = b.load_cell(loss);
        let s = b.fadd(c, sq);
        b.store_cell(loss, s);
    });
    let func = b.finish();
    let mut mem = Memory::for_function(&func);
    mem.set_f64(u0, &det_f64(0x601, total, -0.5, 0.5));
    Benchmark {
        name: "somier",
        suite: "RiVEC",
        regular: false,
        params: format!("{n}x{n}x{n}, steps {steps}"),
        func,
        mem,
        wrt: vec![u0],
        loss: LossSpec::cell(loss),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapeflow_autodiff::gradcheck::check_gradient;

    #[test]
    fn gradient_checks() {
        let b = build(Scale::Tiny);
        let g = b.gradient();
        check_gradient(&b.func, &g, &b.mem, &b.wrt, b.loss, 1e-6, 2e-4, 1e-7).unwrap();
    }

    #[test]
    fn boundary_clamp_is_neutral() {
        // With a uniform displacement field, all spring extensions are
        // zero (clamped boundary springs see the node itself): forces
        // cancel, velocities stay 0 and loss = total * c².
        let b = build(Scale::Tiny);
        let mut mem = b.mem.clone();
        let total = 27;
        mem.set_f64(b.wrt[0], &vec![0.3; total]);
        tapeflow_ir::interp::run(&b.func, &mut mem).unwrap();
        let loss = mem.get_f64_at(b.loss.array, 0);
        assert!((loss - 27.0 * 0.09).abs() < 1e-10);
    }
}
