//! `nn` (Enzyme suite, regular): a two-layer perceptron.
//!
//! `h = tanh(W1·x)`, `o = W2·h`, `loss = ‖o − t‖²`, gradients w.r.t.
//! both weight matrices. The paper's input is a 28×28 image.

use crate::{det_f64, det_lattice, Benchmark, Scale};
use tapeflow_autodiff::gradcheck::LossSpec;
use tapeflow_ir::{ArrayKind, DeclRange, FunctionBuilder, Memory, Scalar};

/// Builds the benchmark.
pub fn build(scale: Scale) -> Benchmark {
    let (input, hidden, out) = match scale {
        Scale::Tiny => (6, 4, 3),
        Scale::Small => (128, 64, 10),
        Scale::Large => (784, 64, 10),
    };
    let mut b = FunctionBuilder::new("nn");
    // The image is quantized to ternary pixel levels {-1, 0, 1}
    // (binarized MNIST-style input); the targets are merely bounded.
    // Both contracts are honest over the generated data, so the
    // value-range analysis can carry them and the dynamic oracle can
    // hold them to account.
    let x = b.array_ranged(
        "x",
        input,
        ArrayKind::Input,
        Scalar::F64,
        DeclRange::Float {
            lo: -1.0,
            hi: 1.0,
            quantized: true,
        },
    );
    let w1 = b.array("W1", hidden * input, ArrayKind::Input, Scalar::F64);
    let w2 = b.array("W2", out * hidden, ArrayKind::Input, Scalar::F64);
    let target = b.array_ranged(
        "t",
        out,
        ArrayKind::Input,
        Scalar::F64,
        DeclRange::Float {
            lo: -1.0,
            hi: 1.0,
            quantized: false,
        },
    );
    let h = b.array("h", hidden, ArrayKind::Temp, Scalar::F64);
    let loss = b.array("loss", 1, ArrayKind::Output, Scalar::F64);
    let acc = b.cell_f64("acc", 0.0);
    // Layer 1: h[j] = tanh(sum_i W1[j,i] * x[i]).
    b.for_loop("j", 0, hidden as i64, |b, j| {
        let zero = b.f64(0.0);
        b.store_cell(acc, zero);
        b.for_loop("i", 0, input as i64, |b, i| {
            let idx = b.idx2(j, input as i64, i);
            let w = b.load(w1, idx);
            let xi = b.load(x, i);
            let p = b.fmul(w, xi);
            let c = b.load_cell(acc);
            let s = b.fadd(c, p);
            b.store_cell(acc, s);
        });
        let pre = b.load_cell(acc);
        let act = b.tanh(pre);
        b.store(h, j, act);
    });
    // Layer 2 + squared error.
    b.for_loop("k", 0, out as i64, |b, k| {
        let zero = b.f64(0.0);
        b.store_cell(acc, zero);
        b.for_loop("j", 0, hidden as i64, |b, j| {
            let idx = b.idx2(k, hidden as i64, j);
            let w = b.load(w2, idx);
            let hj = b.load(h, j);
            let p = b.fmul(w, hj);
            let c = b.load_cell(acc);
            let s = b.fadd(c, p);
            b.store_cell(acc, s);
        });
        let o = b.load_cell(acc);
        let tk = b.load(target, k);
        let e = b.fsub(o, tk);
        let e2 = b.fmul(e, e);
        let c = b.load_cell(loss);
        let s = b.fadd(c, e2);
        b.store_cell(loss, s);
    });
    let func = b.finish();
    let mut mem = Memory::for_function(&func);
    mem.set_f64(x, &det_lattice(0x301, input, -1, 1));
    mem.set_f64(w1, &det_f64(0x302, hidden * input, -0.3, 0.3));
    mem.set_f64(w2, &det_f64(0x303, out * hidden, -0.3, 0.3));
    mem.set_f64(target, &det_f64(0x304, out, -1.0, 1.0));
    Benchmark {
        name: "nn",
        suite: "Enzyme",
        regular: true,
        params: format!("in {input}, hid {hidden}, out {out}"),
        func,
        mem,
        wrt: vec![w1, w2],
        loss: LossSpec::cell(loss),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapeflow_autodiff::gradcheck::check_gradient;

    #[test]
    fn gradient_checks() {
        let b = build(Scale::Tiny);
        let g = b.gradient();
        check_gradient(&b.func, &g, &b.mem, &b.wrt, b.loss, 1e-6, 1e-4, 1e-8).unwrap();
    }

    #[test]
    fn hidden_activations_are_taped() {
        // The tanh activations (consumed by layer 2's adjoint through
        // memory) force tape traffic, as in the paper's nn row.
        let b = build(Scale::Tiny);
        let g = b.gradient();
        assert!(g.stats.taped_values >= 1);
        assert!(g.tape_elems() > 0);
    }
}
