//! `gravity` (DiffTaichi suite, regular): 2-D N-body gravity steps.
//!
//! All-pairs inverse-square forces, explicit Euler integration over a few
//! timesteps; `loss = Σ ‖pos‖²` of the final state, gradients w.r.t. the
//! initial positions. The paper's instance uses 512-element arrays.

use crate::{det_f64, Benchmark, Scale};
use tapeflow_autodiff::gradcheck::LossSpec;
use tapeflow_ir::{ArrayKind, FunctionBuilder, Memory, Scalar};

/// Builds the benchmark.
pub fn build(scale: Scale) -> Benchmark {
    let (n, steps) = match scale {
        Scale::Tiny => (5, 1),
        Scale::Small => (40, 2),
        Scale::Large => (128, 3),
    };
    let mut b = FunctionBuilder::new("gravity");
    let px0 = b.array("px0", n, ArrayKind::Input, Scalar::F64);
    let py0 = b.array("py0", n, ArrayKind::Input, Scalar::F64);
    let vx0 = b.array("vx0", n, ArrayKind::Input, Scalar::F64);
    let vy0 = b.array("vy0", n, ArrayKind::Input, Scalar::F64);
    let loss = b.array("loss", 1, ArrayKind::Output, Scalar::F64);
    // Mutable simulation state.
    let px = b.array("px", n, ArrayKind::Temp, Scalar::F64);
    let py = b.array("py", n, ArrayKind::Temp, Scalar::F64);
    let vx = b.array("vx", n, ArrayKind::Temp, Scalar::F64);
    let vy = b.array("vy", n, ArrayKind::Temp, Scalar::F64);
    let ax = b.array("ax", n, ArrayKind::Temp, Scalar::F64);
    let ay = b.array("ay", n, ArrayKind::Temp, Scalar::F64);

    for (src, dst) in [(px0, px), (py0, py), (vx0, vx), (vy0, vy)] {
        b.for_loop("init", 0, n as i64, |b, i| {
            let v = b.load(src, i);
            b.store(dst, i, v);
        });
    }

    let dt = 0.01;
    let eps = 0.05;
    b.for_loop("s", 0, steps, |b, _s| {
        // Force accumulation.
        b.for_loop("i", 0, n as i64, |b, i| {
            let fx = b.cell_f64("fx", 0.0);
            let fy = b.cell_f64("fy", 0.0);
            let zero = b.f64(0.0);
            b.store_cell(fx, zero);
            b.store_cell(fy, zero);
            b.for_loop("j", 0, n as i64, |b, j| {
                let pxi = b.load(px, i);
                let pxj = b.load(px, j);
                let pyi = b.load(py, i);
                let pyj = b.load(py, j);
                let dx = b.fsub(pxj, pxi);
                let dy = b.fsub(pyj, pyi);
                let dx2 = b.fmul(dx, dx);
                let dy2 = b.fmul(dy, dy);
                let sum = b.fadd(dx2, dy2);
                let e = b.f64(eps);
                let d2 = b.fadd(sum, e);
                let d = b.sqrt(d2);
                let d3 = b.fmul(d2, d);
                let one = b.f64(1.0);
                let inv = b.fdiv(one, d3);
                let cx = b.fmul(dx, inv);
                let cy = b.fmul(dy, inv);
                let ox = b.load_cell(fx);
                let sx = b.fadd(ox, cx);
                b.store_cell(fx, sx);
                let oy = b.load_cell(fy);
                let sy = b.fadd(oy, cy);
                b.store_cell(fy, sy);
            });
            let tfx = b.load_cell(fx);
            let tfy = b.load_cell(fy);
            b.store(ax, i, tfx);
            b.store(ay, i, tfy);
        });
        // Integration.
        b.for_loop("i", 0, n as i64, |b, i| {
            let dtv = b.f64(dt);
            for (vel, acc, pos) in [(vx, ax, px), (vy, ay, py)] {
                let v = b.load(vel, i);
                let a = b.load(acc, i);
                let da = b.fmul(dtv, a);
                let nv = b.fadd(v, da);
                b.store(vel, i, nv);
                let p = b.load(pos, i);
                let dp = b.fmul(dtv, nv);
                let np = b.fadd(p, dp);
                b.store(pos, i, np);
            }
        });
    });
    // Loss.
    b.for_loop("i", 0, n as i64, |b, i| {
        let x = b.load(px, i);
        let y = b.load(py, i);
        let x2 = b.fmul(x, x);
        let y2 = b.fmul(y, y);
        let t = b.fadd(x2, y2);
        let c = b.load_cell(loss);
        let s = b.fadd(c, t);
        b.store_cell(loss, s);
    });
    let func = b.finish();
    let mut mem = Memory::for_function(&func);
    mem.set_f64(px0, &det_f64(0x401, n, -1.0, 1.0));
    mem.set_f64(py0, &det_f64(0x402, n, -1.0, 1.0));
    mem.set_f64(vx0, &det_f64(0x403, n, -0.1, 0.1));
    mem.set_f64(vy0, &det_f64(0x404, n, -0.1, 0.1));
    Benchmark {
        name: "gravity",
        suite: "DiffTaichi",
        regular: true,
        params: format!("bodies {n}, steps {steps}"),
        func,
        mem,
        wrt: vec![px0, py0],
        loss: LossSpec::cell(loss),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapeflow_autodiff::gradcheck::check_gradient;

    #[test]
    fn gradient_checks() {
        let b = build(Scale::Tiny);
        let g = b.gradient();
        check_gradient(&b.func, &g, &b.mem, &b.wrt, b.loss, 1e-6, 2e-4, 1e-7).unwrap();
    }

    #[test]
    fn multi_step_state_forces_tape() {
        // Positions are overwritten every step; the pair-force operands
        // must be taped.
        let b = build(Scale::Tiny);
        let g = b.gradient();
        assert!(g.stats.taped_values > 4);
    }
}
