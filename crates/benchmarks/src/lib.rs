//! # tapeflow-benchmarks
//!
//! The nine benchmarks of the paper's evaluation (Table 4.1), rebuilt as
//! IR programs with deterministic input generators:
//!
//! | Name | Suite | Class |
//! |------|-------|-------|
//! | `gravity` | DiffTaichi | regular |
//! | `nn` | Enzyme | regular |
//! | `logsum` | Enzyme | regular |
//! | `matdescent` | Enzyme | regular |
//! | `mttkrp` | Taco | irregular |
//! | `somier` | RiVEC | irregular |
//! | `lenet5` | LeNet | irregular |
//! | `pathfinder` | RiVEC | irregular |
//! | `mass_spring` | DiffTaichi | irregular |
//!
//! Each benchmark carries its loop/tensor structure from the original
//! source (physics models, tensor kernels, DNN layers, dynamic
//! programming with clamped indices, indirect spring topology). Inputs
//! are scaled by [`Scale`] so the full suite traces and simulates in
//! seconds; the regular/irregular classification and the working-set to
//! cache ratios follow the paper.
//!
//! ```rust
//! use tapeflow_benchmarks::{suite, Scale};
//! let benches = suite(Scale::Tiny);
//! assert_eq!(benches.len(), 9);
//! for b in &benches {
//!     assert!(tapeflow_ir::verify::verify(&b.func).is_ok(), "{}", b.name);
//! }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod gravity;
mod lenet5;
mod logsum;
mod mass_spring;
mod matdescent;
mod mttkrp;
mod nn;
mod pathfinder;
mod somier;

pub use pathfinder::build_sized as pathfinder_sized;

use tapeflow_autodiff::gradcheck::LossSpec;
use tapeflow_autodiff::{differentiate, AdOptions, Gradient, TapePolicy};
use tapeflow_ir::{ArrayId, Function, Memory};

/// Input-size presets.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Minimal sizes for gradient checking (finite differences are
    /// quadratic in input size).
    Tiny,
    /// The evaluation default: large enough that tapes dwarf the scaled
    /// caches, small enough that all nine simulate in seconds.
    #[default]
    Small,
    /// Closer to the paper's inputs (slower; used selectively).
    Large,
}

/// One benchmark instance: a forward function, inputs, and what to
/// differentiate.
#[derive(Clone, Debug)]
pub struct Benchmark {
    /// Benchmark name (paper's Table 4.1).
    pub name: &'static str,
    /// Originating suite.
    pub suite: &'static str,
    /// The paper's regular/irregular classification (cache pressure).
    pub regular: bool,
    /// Human-readable input parameters.
    pub params: String,
    /// The forward function.
    pub func: Function,
    /// Initialized input memory.
    pub mem: Memory,
    /// Arrays to differentiate with respect to.
    pub wrt: Vec<ArrayId>,
    /// The scalar loss.
    pub loss: LossSpec,
}

impl Benchmark {
    /// Differentiates the benchmark with the Enzyme-realistic
    /// [`TapePolicy::Conservative`] policy (the evaluation baseline).
    ///
    /// # Panics
    ///
    /// Panics if differentiation fails — benchmarks are constructed to be
    /// differentiable, so a failure is a bug.
    pub fn gradient(&self) -> Gradient {
        self.gradient_with(TapePolicy::Conservative)
    }

    /// Differentiates with an explicit tape policy.
    ///
    /// # Panics
    ///
    /// See [`Benchmark::gradient`].
    pub fn gradient_with(&self, policy: TapePolicy) -> Gradient {
        differentiate(
            &self.func,
            &AdOptions::new(self.wrt.clone(), vec![self.loss.array]).with_policy(policy),
        )
        .unwrap_or_else(|e| panic!("{}: differentiate failed: {e}", self.name))
    }

    /// A gradient-function memory image with inputs copied and the loss
    /// seed set, ready to execute.
    pub fn gradient_memory(&self, grad: &Gradient) -> Memory {
        let mut mem = grad.prepare_memory(&self.func, &self.mem);
        mem.set_f64_at(
            grad.shadow_of(self.loss.array).expect("loss has a shadow"),
            self.loss.index,
            1.0,
        );
        mem
    }
}

/// Builds one benchmark by name, or `None` for a name absent from the
/// registry; see [`NAMES`].
pub fn try_by_name(name: &str, scale: Scale) -> Option<Benchmark> {
    Some(match name {
        "gravity" => gravity::build(scale),
        "nn" => nn::build(scale),
        "logsum" => logsum::build(scale),
        "matdescent" => matdescent::build(scale),
        "mttkrp" => mttkrp::build(scale),
        "somier" => somier::build(scale),
        "lenet5" => lenet5::build(scale),
        "pathfinder" => pathfinder::build(scale),
        "mass_spring" => mass_spring::build(scale),
        _ => return None,
    })
}

/// Builds one benchmark by name.
///
/// # Panics
///
/// Panics on an unknown name; see [`NAMES`] and [`try_by_name`].
pub fn by_name(name: &str, scale: Scale) -> Benchmark {
    try_by_name(name, scale).unwrap_or_else(|| {
        panic!(
            "unknown benchmark {name:?} (registered: {})",
            NAMES.join(", ")
        )
    })
}

/// All benchmark names, regular first (the paper's Table 4.1 order).
pub const NAMES: [&str; 9] = [
    "gravity",
    "nn",
    "logsum",
    "matdescent",
    "mttkrp",
    "somier",
    "lenet5",
    "pathfinder",
    "mass_spring",
];

/// Builds the full suite.
pub fn suite(scale: Scale) -> Vec<Benchmark> {
    suite_iter(scale).collect()
}

/// Lazily builds the suite's benchmarks by value, in registry order.
/// Unlike [`suite`], nothing is constructed until the iterator is
/// advanced, which lets callers fan construction out across worker
/// threads one benchmark at a time.
pub fn suite_iter(scale: Scale) -> impl Iterator<Item = Benchmark> {
    NAMES.iter().map(move |n| by_name(n, scale))
}

/// Deterministic pseudo-random integer-valued `f64`s on the inclusive
/// lattice `{lo, lo+1, ..., hi}` — quantized data (pixel levels, cost
/// grids, count tensors) that honestly satisfies a `quantized` declared
/// range.
pub(crate) fn det_lattice(seed: u64, n: usize, lo: i64, hi: i64) -> Vec<f64> {
    det_f64(seed, n, lo as f64, (hi + 1) as f64)
        .into_iter()
        .map(|v| v.floor().min(hi as f64))
        .collect()
}

/// Deterministic pseudo-random `f64`s in `[lo, hi)` (xorshift; no
/// dependence on `rand`'s value stability across versions).
pub(crate) fn det_f64(seed: u64, n: usize, lo: f64, hi: f64) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let u = (state >> 11) as f64 / (1u64 << 53) as f64;
            lo + u * (hi - lo)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn det_f64_is_deterministic_and_bounded() {
        let a = det_f64(7, 100, -1.0, 2.0);
        let b = det_f64(7, 100, -1.0, 2.0);
        assert_eq!(a, b);
        assert!(a.iter().all(|&v| (-1.0..2.0).contains(&v)));
        let c = det_f64(8, 100, -1.0, 2.0);
        assert_ne!(a, c);
    }

    #[test]
    fn det_lattice_is_integer_valued_and_bounded() {
        let a = det_lattice(0x42, 500, -2, 9);
        assert!(a.iter().all(|&v| v == v.floor()));
        assert!(a.iter().all(|&v| (-2.0..=9.0).contains(&v)));
        assert!(
            a.contains(&-2.0) && a.contains(&9.0),
            "lattice ends reached"
        );
    }

    #[test]
    fn annotated_inputs_match_their_declared_ranges() {
        // Every declared range must be an honest contract over the
        // generated input data — the dynamic oracle enforces the same
        // property at interpretation time.
        for b in suite(Scale::Tiny) {
            for (i, a) in b.func.arrays().iter().enumerate() {
                let id = ArrayId::new(i);
                let Some(r) = a.range else { continue };
                match r {
                    tapeflow_ir::DeclRange::Int { lo, hi } => {
                        for v in b.mem.get_i64(id) {
                            assert!((lo..=hi).contains(&v), "{}: {} = {v}", b.name, a.name);
                        }
                    }
                    tapeflow_ir::DeclRange::Float { lo, hi, quantized } => {
                        for v in b.mem.get_f64(id) {
                            assert!(
                                (lo..=hi).contains(&v),
                                "{}: {} = {v} outside [{lo}, {hi}]",
                                b.name,
                                a.name
                            );
                            assert!(!quantized || v == v.floor(), "{}: {} = {v}", b.name, a.name);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn suite_builds_and_verifies() {
        for b in suite(Scale::Tiny) {
            tapeflow_ir::verify::verify(&b.func).unwrap_or_else(|e| panic!("{}: {e}", b.name));
            assert!(!b.wrt.is_empty(), "{}", b.name);
        }
    }

    #[test]
    fn regular_irregular_split_matches_paper() {
        let s = suite(Scale::Tiny);
        let regular: Vec<_> = s.iter().filter(|b| b.regular).map(|b| b.name).collect();
        assert_eq!(regular, ["gravity", "nn", "logsum", "matdescent"]);
    }

    #[test]
    fn all_benchmarks_differentiate_at_small_scale() {
        for b in suite(Scale::Small) {
            let g = b.gradient();
            assert!(
                !g.tapes.is_empty(),
                "{}: a benchmark without tape would be pointless",
                b.name
            );
        }
    }
}
