//! Every paper benchmark must survive the full stack: differentiate,
//! compile through all four Tapeflow passes at several scratchpad sizes,
//! execute bit-identically to the plain gradient, and simulate.

use tapeflow_benchmarks::{suite, Benchmark, Scale};
use tapeflow_core::{compile, CompileMode, CompileOptions};
use tapeflow_ir::trace::{trace_function, TraceOptions};
use tapeflow_ir::{ArrayId, Memory};
use tapeflow_sim::{simulate, SimOptions, SystemConfig};

fn shadows_after(
    func: &tapeflow_ir::Function,
    b: &Benchmark,
    grad: &tapeflow_autodiff::Gradient,
) -> Vec<Vec<f64>> {
    let mut mem = Memory::for_function(func);
    for i in 0..b.func.arrays().len() {
        mem.clone_array_from(&b.mem, ArrayId::new(i));
    }
    mem.set_f64_at(grad.shadow_of(b.loss.array).unwrap(), b.loss.index, 1.0);
    tapeflow_ir::interp::run(func, &mut mem).unwrap_or_else(|e| panic!("{}: {e}", func.name));
    b.wrt
        .iter()
        .map(|&w| mem.get_f64(grad.shadow_of(w).unwrap()))
        .collect()
}

#[test]
fn full_pipeline_bit_identical_on_all_benchmarks() {
    for b in suite(Scale::Small) {
        let grad = b.gradient();
        let baseline = shadows_after(&grad.func, &b, &grad);
        for opts in [
            CompileOptions::default(),
            CompileOptions::with_spad_bytes(256),
            CompileOptions {
                mode: CompileMode::AosOnly,
                ..CompileOptions::default()
            },
        ] {
            let c = compile(&grad, &opts)
                .unwrap_or_else(|e| panic!("{}: compile {opts:?}: {e}", b.name));
            tapeflow_ir::verify::verify(&c.func).unwrap_or_else(|e| panic!("{}: {e}", b.name));
            let got = shadows_after(&c.func, &b, &grad);
            assert_eq!(baseline, got, "{}: {opts:?}", b.name);
        }
    }
}

#[test]
fn all_benchmarks_simulate_both_configs() {
    let cfg = SystemConfig::with_cache_bytes(2048);
    for b in suite(Scale::Small) {
        let grad = b.gradient();
        // Enzyme baseline.
        let mut mem = b.gradient_memory(&grad);
        let t = trace_function(
            &grad.func,
            &mut mem,
            TraceOptions {
                phase_barrier: Some(grad.phase_barrier),
            },
        )
        .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let ez = simulate(&t, &cfg, &SimOptions::default());
        assert!(ez.cycles > 0, "{}", b.name);
        assert!(
            ez.cache.tape_hits + ez.cache.tape_misses > 0,
            "{}: baseline must have cache tape traffic",
            b.name
        );
        // Tapeflow.
        let c = compile(&grad, &CompileOptions::default()).unwrap();
        let mut mem2 = Memory::for_function(&c.func);
        for i in 0..b.func.arrays().len() {
            mem2.clone_array_from(&b.mem, ArrayId::new(i));
        }
        mem2.set_f64_at(grad.shadow_of(b.loss.array).unwrap(), b.loss.index, 1.0);
        let t2 = trace_function(
            &c.func,
            &mut mem2,
            TraceOptions {
                phase_barrier: Some(c.phase_barrier),
            },
        )
        .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let tf = simulate(&t2, &cfg, &SimOptions::default());
        assert!(tf.cycles > 0, "{}", b.name);
        // Only unmanaged top-level scalars may remain on the cache path
        // (one store + one load each).
        let unmanaged_cap = 2 * c.plan.unmanaged.len() as u64;
        assert!(
            tf.cache.tape_hits + tf.cache.tape_misses <= unmanaged_cap,
            "{}: {} cache tape accesses > {unmanaged_cap} unmanaged",
            b.name,
            tf.cache.tape_hits + tf.cache.tape_misses
        );
        assert!(tf.spad_accesses > 0, "{}", b.name);
        assert!(tf.stream_cmds > 0, "{}", b.name);
    }
}

#[test]
fn layer_counts_are_substantial() {
    // Table 4.1's layer-count column: every benchmark should split into
    // many layers at the baseline scratchpad.
    for b in suite(Scale::Small) {
        let grad = b.gradient();
        let c = compile(&grad, &CompileOptions::default()).unwrap();
        assert!(
            c.stats.fwd_layers >= 4,
            "{}: only {} layers",
            b.name,
            c.stats.fwd_layers
        );
    }
}

#[test]
fn tape_fraction_matches_paper_band() {
    // Obs 1.1: tape accesses are roughly 20-40% of DRAM accesses in the
    // Enzyme baseline. Allow a wider band for scaled inputs.
    for b in suite(Scale::Small) {
        let grad = b.gradient();
        let mut mem = b.gradient_memory(&grad);
        let t = trace_function(
            &grad.func,
            &mut mem,
            TraceOptions {
                phase_barrier: Some(grad.phase_barrier),
            },
        )
        .unwrap();
        let stats = tapeflow_ir::analysis::trace_stats(&t);
        let frac = stats.tape_access_fraction();
        assert!(
            (0.05..=0.7).contains(&frac),
            "{}: tape fraction {frac:.2} out of band",
            b.name
        );
    }
}
