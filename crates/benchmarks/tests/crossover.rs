//! Locks in the paper's §4.5.2 working-set crossover (Figure 4.9): the
//! cache wins while it captures the whole tape; streaming wins once the
//! tape overflows it.

use tapeflow_benchmarks::pathfinder_sized;
use tapeflow_core::{compile, CompileOptions};
use tapeflow_ir::trace::{trace_function, TraceOptions};
use tapeflow_ir::{ArrayId, Memory};
use tapeflow_sim::{simulate, SimOptions, SystemConfig};

/// Steady-state DRAM bytes per program access for both configurations
/// at the given grid size, on a 32 KB cache. The one-time cool-down
/// flush (`flush_writebacks`) is excluded: it charges every resident
/// dirty line once at the end regardless of grid size, which would
/// mask the in-run traffic difference the crossover is about.
fn dram_per_access(rows: usize, cols: usize) -> (f64, f64) {
    let bench = pathfinder_sized(rows, cols);
    let grad = bench.gradient();
    let cfg = SystemConfig::baseline_32k();
    let run = |func: &tapeflow_ir::Function, barrier| {
        let mut mem = Memory::for_function(func);
        for i in 0..bench.func.arrays().len() {
            mem.clone_array_from(&bench.mem, ArrayId::new(i));
        }
        mem.set_f64_at(grad.shadow_of(bench.loss.array).unwrap(), 0, 1.0);
        let t = trace_function(
            func,
            &mut mem,
            TraceOptions {
                phase_barrier: Some(barrier),
            },
        )
        .unwrap();
        let r = simulate(&t, &cfg, &SimOptions::default());
        let flush_bytes = r.cache.flush_writebacks * cfg.cache.line_bytes as u64;
        (r.dram_bytes() - flush_bytes) as f64 / (r.cache.accesses() + r.spad_accesses).max(1) as f64
    };
    let enzyme = run(&grad.func, grad.phase_barrier);
    let compiled = compile(&grad, &CompileOptions::default()).unwrap();
    let tapeflow = run(&compiled.func, compiled.phase_barrier);
    (enzyme, tapeflow)
}

#[test]
fn cache_wins_small_streaming_wins_large() {
    // Small grid: tape ≈ 1/3 of the cache — Enzyme keeps it resident,
    // Tapeflow streams it out and back anyway.
    let (ez_small, tf_small) = dram_per_access(10, 24);
    assert!(
        tf_small > ez_small,
        "small working set must favour the cache: tflow {tf_small:.2} vs enzyme {ez_small:.2}"
    );
    // Large grid: tape ≈ 3x the cache — Enzyme thrashes, streams do not.
    let (ez_large, tf_large) = dram_per_access(40, 64);
    assert!(
        tf_large < ez_large,
        "overflowing tape must favour streaming: tflow {tf_large:.2} vs enzyme {ez_large:.2}"
    );
    // Tapeflow's traffic per access is insensitive to the working set.
    let drift = (tf_large - tf_small).abs() / tf_small;
    assert!(
        drift < 0.25,
        "stream traffic should be flat, drifted {drift:.2}"
    );
}
