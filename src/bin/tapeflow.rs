//! The `tapeflow` command-line tool — the repository's analogue of the
//! paper's Appendix A toolflow (`clang … | opt -enzyme -enable-tf`).
//!
//! ```text
//! tapeflow show      FILE                         parse + pretty-print
//! tapeflow opt       FILE                         constant-fold / CSE / DCE
//! tapeflow grad      FILE --wrt a,b --loss l      differentiate (prints gradient IR)
//! tapeflow compile   FILE --wrt a,b --loss l      pass-manager pipeline (opt → ad →
//!                    [--spad-bytes N] [--aos-only]    regions → layering → streams →
//!                    [--single-buffer]                spad-index; --compress-tape adds
//!                    [--compress-tape]                tape-compress before streams)
//! tapeflow simulate  FILE --wrt a,b --loss l      AD → compile → trace → simulate,
//!                    [--cache-bytes N] [--spad-bytes N]   Enzyme vs Tapeflow
//! tapeflow profile   FILE --wrt a,b --loss l      simulate with the cycle-attribution
//!                    [--trace-out trace.json]         probe: stall-breakdown table,
//!                    [--by-inst] [--top N]            per-pass IR deltas, Chrome trace;
//!                    [--flame-out f.folded]           --by-inst adds source-attributed
//!                    [--sample N]                     hot-spot tables + flamegraph
//! tapeflow lint      FILE|NAME [--json PATH]      static tape-safety / scratchpad /
//!                    [--check-dynamic]                stream-schedule / value-range
//!                    [--explain RULE]                 analysis; exit 1 on any
//!                                                     error-severity finding or
//!                                                     dynamic-oracle escape
//! tapeflow passes                                 list registered passes
//! tapeflow bench-host [--scale S] [--repeats N]   time the configuration sweep on both
//!                    [--benchmarks a,b] [--jobs N]    simulator engines (event-driven vs
//!                    [--stable-json] [--json PATH]    legacy scalar); writes
//!                                                     results/BENCH_host_perf.json
//! ```
//!
//! `compile`, `simulate` and `profile` drive the `tapeflow_core::pipeline`
//! pass manager and accept LLVM-style pipeline flags: `--passes a,b,c`
//! runs a custom pass list, `--print-after-all` prints the verified IR
//! after every pass, `--time-passes` prints a per-pass wall-time table to
//! stderr. `simulate --json PATH` includes a `passes` section with the
//! per-pass records and IR deltas.
//!
//! `profile` attaches the [`tapeflow::sim::probe`] observability layer:
//! it prints a table charging every PE-cycle of both the Enzyme baseline
//! and the Tapeflow build to a cause (enforcing the
//! `sum(attributed) == cycles × PEs` invariant), a per-pass IR-delta
//! table, and with `--trace-out FILE.json` writes a Chrome trace-event
//! timeline (one track per PE, cache port, stream engine and scratchpad
//! bank) loadable in `chrome://tracing` or <https://ui.perfetto.dev>.
//!
//! `profile --by-inst` splits the same budget per IR instruction
//! (column sums stay exactly equal to the per-cause totals) and resolves
//! each instruction through the provenance chain the compiler passes
//! maintain — source op, tape region, layer, creating/rewriting pass —
//! into per-variant hot-spot tables (`--top N` rows). `--flame-out
//! FILE.folded` writes the same rollup as collapsed flamegraph stacks
//! (`variant;region;layer;source;op count` — render with inferno,
//! flamegraph.pl or speedscope). `--sample N` records the `--trace-out`
//! timeline in 1-in-N windows of 256 cycles (deterministic fixed-stride
//! schedule, no RNG), bounding trace memory at `--scale large`; the
//! phase barrier is always kept and a `sampling` metadata instant names
//! the recorded fraction. Output paths are validated up front — an
//! unwritable `--trace-out`/`--json`/`--flame-out` is a usage error
//! (exit 2) before the simulation runs, not a panic after it.
//!
//! `simulate` and `profile` default to the event-driven simulator core;
//! `--engine legacy` selects the scalar per-cycle reference engine
//! instead (both produce byte-identical reports — `bench-host` measures
//! the throughput gap between them). `bench-host --benchmarks a,b`
//! restricts the run to a registry subset (an unknown name is a usage
//! error that lists the registry), `--jobs N` sets the worker count for
//! the mixed sweep's trace-group fan-out (default: all logical CPUs;
//! the reports are byte-identical at any count), and `--stable-json`
//! zeroes the wall-clock and host-identity fields of the JSON document
//! (schema `tapeflow.bench.host_perf/v2`, which carries a `host`
//! section: logical CPUs, rustc version, opt-level, job count) so the
//! bytes reproduce across machines.
//!
//! `FILE` is textual IR in the `pretty`/`parse` format (see
//! `tapeflow_ir::parse`). For `simulate`, `f64` inputs are filled with a
//! deterministic ramp and `i64` inputs with `0..len` so any well-formed
//! program runs without an input file.
//!
//! Where a `FILE` is accepted, a registered benchmark name (`tapeflow
//! passes` lists passes; see `tapeflow::benchmarks::NAMES` for programs)
//! works too: `lint`, `simulate` and `profile` then use the benchmark's
//! own inputs and `--wrt`/`--loss` default to its gradient spec.
//! `--scale tiny|small|large` picks the benchmark size.
//!
//! `lint` runs the `tapeflow_ir::lint` + `tapeflow_core::lint` +
//! `tapeflow_ir::vra` analyses over the fully compiled program (or
//! directly over an already-lowered IR file), prints the findings as a
//! table, optionally as `--json` (schema `tapeflow.cli.lint/v2`, which
//! carries a `ranges` section: the bounded/total value census, per-array
//! content ranges and — under `--compress-tape` — the per-slot narrowing
//! decisions), and exits non-zero when any error-severity finding fires.
//! `lint --check-dynamic` additionally runs the dynamic soundness
//! oracle: it interprets the program (and, through the pipeline, its
//! gradient function) under a recorder that observes every produced
//! value and array write, then checks each observation against the
//! static ranges — any escape means the analysis or an input annotation
//! is unsound, and the command exits non-zero. `lint --explain RULE`
//! prints the rule-catalog entry for any lint rule and exits.
//! `--lint-after-all` (any pipeline-driving
//! command) additionally runs the function-level lints after every pass
//! and reports per-pass findings on stderr, mirroring
//! `--print-after-all` — it never changes the compiled output.

use std::process::ExitCode;
use tapeflow::autodiff::{differentiate, AdOptions, Gradient, TapePolicy};
use tapeflow::bench::{attr, hostperf, pool};
use tapeflow::benchmarks::{self, Benchmark, Scale};
use tapeflow::core::compress::SlotEncoding;
use tapeflow::core::compress::TapeEncoding;
use tapeflow::core::pipeline::{
    registered_passes, IrCounts, PassRecord, PipelineBuilder, PipelineReport,
};
use tapeflow::core::{lint as plan_lint, CompileMode, CompileOptions, CompiledProgram};
use tapeflow::ir::lint::{self, LintConfig};
use tapeflow::ir::trace::{trace_function, TraceOptions};
use tapeflow::ir::{interp, parse, pretty, vra, ArrayId, ArrayKind, Function, Memory, Op, Scalar};
use tapeflow::sim::json::Value;
use tapeflow::sim::{
    try_simulate_probed_with, AttributionProbe, CycleBreakdown, Engine, NoProbe, SamplingProbe,
    SimOptions, SimReport, StallKind, SystemConfig, TraceRecorder,
};

/// Timeline slice length for `profile --sample N`: every `N`-th window
/// of this many cycles is recorded in full.
const SAMPLE_WINDOW: u64 = 256;

struct Args {
    file: String,
    wrt: Vec<String>,
    loss: Option<String>,
    spad_bytes: usize,
    cache_bytes: usize,
    aos_only: bool,
    compress_tape: bool,
    double_buffer: bool,
    policy: TapePolicy,
    json: Option<String>,
    trace_out: Option<String>,
    passes: Option<Vec<String>>,
    print_after_all: bool,
    time_passes: bool,
    lint_after_all: bool,
    scale: Scale,
    engine: Engine,
    repeats: usize,
    by_inst: bool,
    top: usize,
    sample: Option<u64>,
    flame_out: Option<String>,
    benchmarks: Option<Vec<String>>,
    jobs: Option<usize>,
    stable_json: bool,
    check_dynamic: bool,
    explain: Option<String>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: tapeflow <show|opt|grad|compile|simulate|profile|lint|passes|bench-host> \
         FILE|NAME \
         [--wrt a,b] [--loss l] [--spad-bytes N] [--cache-bytes N] \
         [--aos-only] [--compress-tape] [--single-buffer] \
         [--policy minimal|conservative|all] \
         [--passes a,b,c] [--print-after-all] [--time-passes] [--lint-after-all] \
         [--scale tiny|small|large] [--engine event|legacy] [--repeats N] \
         [--by-inst] [--top N] [--sample N] [--flame-out PATH] \
         [--benchmarks a,b] [--jobs N] [--stable-json] \
         [--check-dynamic] [--explain RULE] \
         [--json PATH] [--trace-out PATH]"
    );
    ExitCode::from(2)
}

fn parse_args(mut argv: impl Iterator<Item = String>) -> Result<(String, Args), String> {
    let cmd = argv.next().ok_or("missing command")?;
    let mut args = Args {
        file: String::new(),
        wrt: Vec::new(),
        loss: None,
        spad_bytes: 1024,
        cache_bytes: 32 * 1024,
        aos_only: false,
        compress_tape: false,
        double_buffer: true,
        policy: TapePolicy::Conservative,
        json: None,
        trace_out: None,
        passes: None,
        print_after_all: false,
        time_passes: false,
        lint_after_all: false,
        scale: Scale::default(),
        engine: Engine::default(),
        repeats: 5,
        by_inst: false,
        top: 10,
        sample: None,
        flame_out: None,
        benchmarks: None,
        jobs: None,
        stable_json: false,
        check_dynamic: false,
        explain: None,
    };
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--wrt" => {
                let v = argv.next().ok_or("--wrt needs a value")?;
                args.wrt = v.split(',').map(str::to_string).collect();
            }
            "--loss" => args.loss = Some(argv.next().ok_or("--loss needs a value")?),
            "--spad-bytes" => {
                args.spad_bytes = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--spad-bytes needs a number")?;
            }
            "--cache-bytes" => {
                args.cache_bytes = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--cache-bytes needs a number")?;
            }
            "--aos-only" => args.aos_only = true,
            "--compress-tape" => args.compress_tape = true,
            "--single-buffer" => args.double_buffer = false,
            "--json" => args.json = Some(argv.next().ok_or("--json needs a path")?),
            "--trace-out" => {
                args.trace_out = Some(argv.next().ok_or("--trace-out needs a path")?);
            }
            "--passes" => {
                let v = argv.next().ok_or("--passes needs a comma-separated list")?;
                args.passes = Some(v.split(',').map(str::to_string).collect());
            }
            "--by-inst" => args.by_inst = true,
            "--top" => {
                args.top = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or("--top needs a positive number")?;
            }
            "--sample" => {
                args.sample = Some(
                    argv.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n > 0)
                        .ok_or("--sample needs a positive stride")?,
                );
            }
            "--flame-out" => {
                args.flame_out = Some(argv.next().ok_or("--flame-out needs a path")?);
            }
            "--benchmarks" => {
                let v = argv
                    .next()
                    .ok_or("--benchmarks needs a comma-separated list")?;
                args.benchmarks = Some(v.split(',').map(str::to_string).collect());
            }
            "--jobs" => {
                args.jobs = Some(
                    argv.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--jobs needs a number (0 = auto)")?,
                );
            }
            "--stable-json" => args.stable_json = true,
            "--check-dynamic" => args.check_dynamic = true,
            "--explain" => args.explain = Some(argv.next().ok_or("--explain needs a rule name")?),
            "--print-after-all" => args.print_after_all = true,
            "--time-passes" => args.time_passes = true,
            "--lint-after-all" => args.lint_after_all = true,
            "--scale" => {
                args.scale = match argv.next().as_deref() {
                    Some("tiny") => Scale::Tiny,
                    Some("small") => Scale::Small,
                    Some("large") => Scale::Large,
                    other => return Err(format!("unknown scale {other:?}")),
                };
            }
            "--engine" => {
                args.engine = match argv.next().as_deref() {
                    Some("event") => Engine::Event,
                    Some("legacy") => Engine::Legacy,
                    other => return Err(format!("unknown engine {other:?}")),
                };
            }
            "--repeats" => {
                args.repeats = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or("--repeats needs a positive number")?;
            }
            "--policy" => {
                args.policy = match argv.next().as_deref() {
                    Some("minimal") => TapePolicy::Minimal,
                    Some("conservative") => TapePolicy::Conservative,
                    Some("all") => TapePolicy::All,
                    other => return Err(format!("unknown policy {other:?}")),
                };
            }
            f if args.file.is_empty() && !f.starts_with("--") => args.file = f.to_string(),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    let standalone =
        cmd == "passes" || cmd == "bench-host" || (cmd == "lint" && args.explain.is_some());
    if args.file.is_empty() && !standalone {
        return Err("missing input file".into());
    }
    Ok((cmd, args))
}

fn resolve_arrays(func: &Function, names: &[String]) -> Result<Vec<ArrayId>, String> {
    names
        .iter()
        .map(|n| {
            func.array_by_name(n)
                .ok_or_else(|| format!("no array named {n:?}"))
        })
        .collect()
}

/// The program a command operates on: a parsed IR file, or a registered
/// benchmark (which also carries its inputs and gradient spec).
struct Input {
    func: Function,
    bench: Option<Benchmark>,
}

/// Resolves the positional argument: an IR file when it exists on disk,
/// else a registered benchmark name. A miss on both is a structured
/// error (never a panic), listing the registry.
fn load_input(args: &Args) -> Result<Input, String> {
    if std::path::Path::new(&args.file).exists() {
        let text = std::fs::read_to_string(&args.file)
            .map_err(|e| format!("cannot read {}: {e}", args.file))?;
        let func = parse::parse(&text).map_err(|e| e.to_string())?;
        return Ok(Input { func, bench: None });
    }
    match benchmarks::try_by_name(&args.file, args.scale) {
        Some(bench) => Ok(Input {
            func: bench.func.clone(),
            bench: Some(bench),
        }),
        None => Err(format!(
            "{:?} is neither a readable IR file nor a registered benchmark \
             (registered: {})",
            args.file,
            benchmarks::NAMES.join(", ")
        )),
    }
}

fn ad_options(input: &Input, args: &Args) -> Result<AdOptions, String> {
    if args.wrt.is_empty() {
        // A benchmark carries its own gradient spec; use it when the user
        // gave none.
        if let Some(b) = &input.bench {
            return Ok(AdOptions::new(b.wrt.clone(), vec![b.loss.array]).with_policy(args.policy));
        }
        return Err("--wrt is required for this command".into());
    }
    let loss_name = args.loss.as_ref().ok_or("--loss is required")?;
    let wrt = resolve_arrays(&input.func, &args.wrt)?;
    let loss = resolve_arrays(&input.func, std::slice::from_ref(loss_name))?[0];
    Ok(AdOptions::new(wrt, vec![loss]).with_policy(args.policy))
}

/// The base input arrays for simulation: a benchmark's own inputs, or
/// the deterministic defaults for a plain IR file.
fn base_memory(input: &Input) -> Memory {
    match &input.bench {
        Some(b) => b.mem.clone(),
        None => default_memory(&input.func),
    }
}

/// Deterministic inputs: f64 ramps, i64 identity indices.
fn default_memory(func: &Function) -> Memory {
    let mut mem = Memory::for_function(func);
    for (i, a) in func.arrays().iter().enumerate() {
        if a.kind != ArrayKind::Input {
            continue;
        }
        let id = ArrayId::new(i);
        match a.elem {
            Scalar::F64 => {
                let data: Vec<f64> = (0..a.len).map(|k| 0.05 + 0.01 * k as f64).collect();
                mem.set_f64(id, &data);
            }
            Scalar::I64 => {
                let data: Vec<i64> = (0..a.len).map(|k| k as i64).collect();
                mem.set_i64(id, &data);
            }
        }
    }
    mem
}

/// The scratchpad/pipeline options the CLI flags select.
fn compile_options(args: &Args, mode: CompileMode) -> CompileOptions {
    CompileOptions {
        spad_entries: (args.spad_bytes / 8).max(2),
        double_buffer: args.double_buffer,
        mode,
        compress_tape: args.compress_tape,
    }
}

/// The lint machine model the flags select: scratchpad size from
/// `--spad-bytes`, bank count from the simulated system config.
fn lint_config(copts: &CompileOptions) -> LintConfig {
    LintConfig {
        spad_entries: copts.spad_entries,
        spad_banks: SystemConfig::default().spad.banks,
    }
}

/// The standard Full-mode pass list the flags select. `--compress-tape`
/// inserts the `value-ranges` analysis plus Pass 5 (`tape-compress`)
/// between `layering` and the `streams` terminal lowering —
/// `tape-compress` refuses to run without the `value-ranges` artifact.
fn full_pass_names(args: &Args, with_opt: bool) -> Vec<&'static str> {
    let mut names = Vec::new();
    if with_opt {
        names.push("opt");
    }
    names.extend(["ad", "regions", "layering"]);
    if args.compress_tape {
        names.extend(["value-ranges", "tape-compress"]);
    }
    names.extend(["streams", "spad-index"]);
    names
}

/// The `lint` pass list: the standard pipeline with `value-ranges`
/// always present, so the range census and the `float-nonfinite` rule
/// see the pipeline's own artifact rather than a side computation.
fn lint_pass_names(args: &Args) -> Vec<&'static str> {
    if args.aos_only {
        return vec!["opt", "ad", "regions", "value-ranges", "aos-layout"];
    }
    let mut names = vec!["opt", "ad", "regions", "layering", "value-ranges"];
    if args.compress_tape {
        names.push("tape-compress");
    }
    names.extend(["streams", "spad-index"]);
    names
}

/// The pipeline behind `compile`/`simulate`: the flags' standard
/// pipeline, or `--passes`'s custom list (which only needs `--wrt`/
/// `--loss` when it contains `ad`).
fn pipeline_for(
    args: &Args,
    input: &Input,
    copts: CompileOptions,
    default_names: &[&str],
) -> Result<PipelineBuilder, String> {
    let names: Vec<&str> = match &args.passes {
        Some(list) => list.iter().map(String::as_str).collect(),
        None => default_names.to_vec(),
    };
    let ad = if names.contains(&"ad") {
        Some(ad_options(input, args)?)
    } else {
        None
    };
    let lint = args.lint_after_all.then(|| lint_config(&copts));
    Ok(PipelineBuilder::from_names(&names, copts, ad)
        .map_err(|e| e.to_string())?
        .with_lint(lint))
}

/// Everything `simulate`/`profile` need after the pipeline ran: the
/// pass report plus the two programs to race (the gradient is the
/// Enzyme baseline, the compiled program the Tapeflow build).
struct SimSetup {
    report: PipelineReport,
    grad: Gradient,
    compiled: CompiledProgram,
}

/// Compiles `func` through the simulate pipeline (no `opt` by default,
/// matching the established Enzyme-vs-Tapeflow numbers; opt in via
/// `--passes opt,ad,...`).
fn compile_variants(args: &Args, input: &Input) -> Result<(AdOptions, SimSetup), String> {
    let opts = ad_options(input, args)?;
    let copts = compile_options(args, CompileMode::Full);
    let builder = pipeline_for(args, input, copts, &full_pass_names(args, false))?
        .with_verify(true)
        .with_ir_capture(args.print_after_all);
    let run = builder.run_source(&input.func).map_err(|e| e.to_string())?;
    if args.print_after_all {
        // stderr: simulate/profile's stdout stays the result tables.
        eprint!("{}", run.report.render_snapshots());
    }
    if args.time_passes {
        eprint!("{}", run.report.render_timings());
    }
    if args.lint_after_all {
        eprint!("{}", run.report.render_lint());
    }
    let report = run.report.clone();
    let grad = run
        .state
        .gradient
        .clone()
        .ok_or("this command needs the `ad` pass in --passes")?;
    let compiled = run.into_compiled().map_err(|e| e.to_string())?;
    Ok((
        opts,
        SimSetup {
            report,
            grad,
            compiled,
        },
    ))
}

/// Inputs for one simulated variant: the shared deterministic base
/// arrays plus a unit seed in the loss shadow.
fn variant_memory(
    source: &Function,
    variant: &Function,
    base: &Memory,
    grad: &Gradient,
    opts: &AdOptions,
) -> Memory {
    let mut mem = Memory::for_function(variant);
    for i in 0..source.arrays().len() {
        mem.clone_array_from(base, ArrayId::new(i));
    }
    mem.set_f64_at(grad.shadow_of(opts.seeds[0]).expect("loss shadow"), 0, 1.0);
    mem
}

/// One `{insts, values, tape_slots}` IR-size object.
fn ir_counts_json(c: &IrCounts) -> Value {
    let mut v = Value::object();
    v.set("insts", c.insts)
        .set("values", c.values)
        .set("tape_slots", c.tape_slots);
    v
}

/// The JSON `passes` section shared by `simulate` and `profile`:
/// per-pass wall time, pre/post IR counters and the per-pass deltas.
fn passes_json(records: &[PassRecord]) -> Vec<Value> {
    records
        .iter()
        .map(|r| {
            let mut p = Value::object();
            p.set("pass", r.name)
                .set("seconds", r.wall.as_secs_f64())
                .set("insts", r.ir_insts)
                .set("values", r.ir_after.values)
                .set("tape_slots", r.ir_after.tape_slots)
                .set("ir_before", ir_counts_json(&r.ir_before))
                .set("ir_after", ir_counts_json(&r.ir_after))
                .set("insts_delta", r.insts_delta())
                .set("values_delta", r.values_delta())
                .set("tape_slots_delta", r.tape_slots_delta())
                .set("detail", r.detail.as_str());
            p
        })
        .collect()
}

/// The JSON `compression` section: what Pass 5 (`tape-compress`) did to
/// the tape layout (only present when the pass ran).
fn compression_json(enc: &TapeEncoding) -> Value {
    let mut v = Value::object();
    v.set("elided_slots", enc.elided_slots)
        .set("narrowed_slots", enc.narrowed_slots)
        .set("tape_bytes_before", enc.bytes_before)
        .set("tape_bytes_after", enc.bytes_after);
    v
}

/// Greedy word wrap for catalog paragraphs.
fn wrap(text: &str, width: usize, indent: &str) -> String {
    let mut out = String::new();
    let mut col = 0;
    for w in text.split_whitespace() {
        if col == 0 {
            out.push_str(indent);
            col = indent.len();
        } else if col + 1 + w.len() > width {
            out.push('\n');
            out.push_str(indent);
            col = indent.len();
        } else {
            out.push(' ');
            col += 1;
        }
        out.push_str(w);
        col += w.len();
    }
    out
}

/// `lint --explain RULE`: prints one rule-catalog entry, or the whole
/// catalog index when the rule name is unknown (as an error).
fn explain_cmd(rule: &str) -> Result<(), String> {
    match plan_lint::explain_rule(rule) {
        Some(doc) => {
            println!(
                "{} ({}, {} level)",
                doc.rule,
                doc.severity.label(),
                doc.layer
            );
            println!("{}", wrap(doc.what, 72, "  "));
            Ok(())
        }
        None => Err(format!(
            "no lint rule named {rule:?}; the catalog: {}",
            plan_lint::RULE_CATALOG
                .iter()
                .map(|d| d.rule)
                .collect::<Vec<_>>()
                .join(", ")
        )),
    }
}

/// The JSON `ranges` section of the lint v2 schema: the bounded/total
/// value census over the analysed function, every array's proven
/// content range, and the per-slot narrowing decisions when
/// `tape-compress` ran.
fn ranges_json(
    func: &Function,
    r: &vra::ValueRanges,
    grad: Option<&Gradient>,
    enc: Option<&TapeEncoding>,
) -> Value {
    let (bi, ui) = r.int_census(func);
    let (bf, uf) = r.float_census(func);
    let mut v = Value::object();
    v.set("bounded_i64", bi)
        .set("total_i64", bi + ui)
        .set("bounded_f64", bf)
        .set("total_f64", bf + uf);
    let arrays: Vec<Value> = func
        .arrays()
        .iter()
        .zip(&r.contents)
        .map(|(a, c)| {
            let mut o = Value::object();
            o.set("name", a.name.as_str()).set(
                "content",
                match c {
                    vra::ContentRange::Int(Some(ir)) => format!("i64 [{}, {}]", ir.lo, ir.hi),
                    vra::ContentRange::Float(Some(fr)) => format!(
                        "f64 [{}, {}]{}",
                        fr.lo,
                        fr.hi,
                        if fr.quantized { " quantized" } else { "" }
                    ),
                    _ => "unbounded".to_string(),
                },
            );
            o
        })
        .collect();
    v.set("arrays", Value::Arr(arrays));
    if let (Some(grad), Some(enc)) = (grad, enc) {
        let narrowing: Vec<Value> = enc
            .slots
            .iter()
            .enumerate()
            .map(|(k, s)| {
                let mut o = Value::object();
                o.set("slot", k)
                    .set("array", grad.func.array(grad.tapes[k].array).name.as_str());
                match s {
                    SlotEncoding::Keep { width } => {
                        o.set("encoding", "keep")
                            .set("width_bytes", *width as usize);
                    }
                    SlotEncoding::Remat(_) => {
                        o.set("encoding", "remat");
                    }
                }
                o
            })
            .collect();
        v.set("narrowing", Value::Arr(narrowing));
    }
    v
}

/// One variant of the dynamic soundness oracle (`lint --check-dynamic`):
/// interprets `f` under a [`interp::RangeRecorder`], re-derives the
/// static ranges, and returns the render line plus any escapes.
fn oracle_run(label: &str, f: &Function, mem: &mut Memory) -> Result<(String, usize), String> {
    let rec = interp::RangeRecorder::new(f, mem);
    let (rec, dyn_insts) = interp::execute(f, mem, rec)
        .map_err(|e| format!("--check-dynamic: {label} failed to execute: {e}"))?;
    let ranges = vra::value_ranges(f);
    let escapes = vra::check_containment(f, &ranges, &rec);
    let mut line = format!(
        "{label:<9} {dyn_insts:>9} dynamic insts, {} values, {} arrays: {}",
        f.values().len(),
        f.arrays().len(),
        if escapes.is_empty() {
            "contained".to_string()
        } else {
            format!("{} ESCAPE(S)", escapes.len())
        }
    );
    for e in &escapes {
        line.push_str(&format!("\n  {e}"));
    }
    Ok((line, escapes.len()))
}

/// `+n` / `-n` / `0`, so growth and shrinkage read at a glance.
fn signed(v: i64) -> String {
    if v > 0 {
        format!("+{v}")
    } else {
        v.to_string()
    }
}

/// The profile stall table: one column pair per simulated variant, one
/// row per attribution cause, footers with totals and occupancy.
fn render_stall_table(rows: &[(&str, SimReport, CycleBreakdown)]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let pes = rows.iter().map(|r| r.2.pes).max().unwrap_or(0);
    let _ = writeln!(out, "=== cycle attribution ({pes} PEs, PE-cycles) ===");
    let _ = write!(out, "{:<28}", "cause");
    for (label, _, _) in rows {
        let _ = write!(out, "{label:>14} {:>6}", "%");
    }
    let _ = writeln!(out);
    for kind in StallKind::ALL {
        let _ = write!(out, "{:<28}", kind.label());
        for (_, _, bd) in rows {
            let u = bd.get(kind);
            let pct = if bd.total_units() == 0 {
                0.0
            } else {
                u as f64 / bd.total_units() as f64 * 100.0
            };
            let _ = write!(out, "{u:>14} {pct:>5.1}%");
        }
        let _ = writeln!(out);
    }
    let mut footer = |name: &str, cells: Vec<String>| {
        let _ = write!(out, "{name:<28}");
        for c in cells {
            let _ = write!(out, "{c:>14} {:>6}", "");
        }
        let _ = writeln!(out);
    };
    footer(
        "total PE-cycles",
        rows.iter().map(|r| r.2.total_units().to_string()).collect(),
    );
    footer(
        "cycles",
        rows.iter().map(|r| r.1.cycles.to_string()).collect(),
    );
    footer(
        "avg busy PEs",
        rows.iter()
            .map(|r| format!("{:.2}", r.2.avg_busy_pes()))
            .collect(),
    );
    out
}

/// The profile per-pass table: post-pass IR counters and their deltas.
fn render_pass_deltas(report: &PipelineReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "=== per-pass IR deltas ===");
    let _ = writeln!(
        out,
        "{:<12} {:>7} {:>8} {:>7} {:>8} {:>10} {:>8}  detail",
        "pass", "insts", "Δinsts", "values", "Δvalues", "tape slots", "Δslots"
    );
    for r in &report.records {
        let _ = writeln!(
            out,
            "{:<12} {:>7} {:>8} {:>7} {:>8} {:>10} {:>8}  {}",
            r.name,
            r.ir_after.insts,
            signed(r.insts_delta()),
            r.ir_after.values,
            signed(r.values_delta()),
            r.ir_after.tape_slots,
            signed(r.tape_slots_delta()),
            r.detail
        );
    }
    out
}

/// Fails fast when an output path cannot be created or appended to, so
/// a long simulation never runs just to die on the final write. The
/// probe file survives (empty or with its old content intact) and is
/// overwritten by the real emit. A `-` path is never written.
fn check_writable(flag: &str, path: &str) -> Result<(), String> {
    if path == "-" {
        return Ok(());
    }
    std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map(drop)
        .map_err(|e| format!("{flag} {path}: not writable: {e}"))
}

fn run() -> Result<ExitCode, String> {
    let mut argv = std::env::args().skip(1);
    let (cmd, args) = parse_args(&mut argv)?;
    if matches!(args.engine, Engine::Legacy) {
        // Deprecation path: the scalar reference engine only survives to
        // cross-validate the event core (see DESIGN.md, "Legacy engine
        // removal plan"). Reports are byte-identical either way.
        eprintln!(
            "tapeflow: warning: --engine legacy is deprecated and will be \
             removed once the event engine's equivalence suite has covered \
             a full release cycle; see DESIGN.md for the removal plan"
        );
    }
    if cmd == "passes" {
        for (name, desc) in registered_passes() {
            println!("{name:<13} {desc}");
        }
        return Ok(ExitCode::SUCCESS);
    }
    if cmd == "bench-host" {
        // Host-throughput tracking: each selected benchmark's cache
        // ladder and mixed sweep, timed on both engines (min of
        // --repeats runs). --benchmarks narrows the registry; an
        // unknown name is a usage error that lists what exists.
        let names: Vec<&'static str> = match &args.benchmarks {
            None => benchmarks::NAMES.to_vec(),
            Some(list) => list
                .iter()
                .map(|n| {
                    benchmarks::NAMES
                        .iter()
                        .copied()
                        .find(|&k| k == n.as_str())
                        .ok_or_else(|| {
                            format!(
                                "unknown benchmark {n:?}; registered benchmarks: {}",
                                benchmarks::NAMES.join(", ")
                            )
                        })
                })
                .collect::<Result<_, _>>()?,
        };
        let (jobs, note) = pool::clamp_jobs(args.jobs.unwrap_or(0));
        if let Some(note) = note.filter(|_| args.jobs.is_some()) {
            eprintln!("tapeflow: {note}");
        }
        let results = hostperf::measure_named(&names, args.scale, args.repeats, jobs);
        print!("{}", hostperf::render_table(&results));
        let path = args
            .json
            .as_deref()
            .unwrap_or("results/BENCH_host_perf.json");
        if path != "-" {
            let meta = hostperf::host_meta(jobs);
            let doc = hostperf::host_perf_json(&results, args.scale, &meta, args.stable_json);
            if let Some(dir) = std::path::Path::new(path)
                .parent()
                .filter(|d| !d.as_os_str().is_empty())
            {
                std::fs::create_dir_all(dir)
                    .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
            }
            std::fs::write(path, doc.render()).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("// machine-readable report: {path}");
        }
        return Ok(ExitCode::SUCCESS);
    }
    if cmd == "lint" {
        if let Some(rule) = &args.explain {
            explain_cmd(rule)?;
            return Ok(ExitCode::SUCCESS);
        }
    }
    let input = load_input(&args)?;
    let func = input.func.clone();

    match cmd.as_str() {
        "show" => print!("{}", pretty::pretty(&func)),
        "opt" => {
            let (g, stats) = tapeflow::ir::opt::optimize(&func);
            print!("{}", pretty::pretty(&g));
            eprintln!(
                "// folded {} cse {} dce {}",
                stats.folded, stats.cse_hits, stats.dce_removed
            );
        }
        "grad" => {
            let opts = ad_options(&input, &args)?;
            let grad = differentiate(&func, &opts).map_err(|e| e.to_string())?;
            print!("{}", pretty::pretty(&grad.func));
            eprintln!(
                "// taped {} values ({} bytes), recomputed {}, adjoint cells {}",
                grad.stats.taped_values,
                grad.stats.tape_bytes,
                grad.stats.recomputed_values,
                grad.stats.adjoint_cells
            );
        }
        "compile" => {
            let mode = if args.aos_only {
                CompileMode::AosOnly
            } else {
                CompileMode::Full
            };
            let copts = compile_options(&args, mode);
            let default_names: Vec<&str> = if args.aos_only {
                vec!["opt", "ad", "regions", "aos-layout"]
            } else {
                full_pass_names(&args, true)
            };
            let builder = pipeline_for(&args, &input, copts, &default_names)?
                .with_verify(true)
                .with_ir_capture(args.print_after_all);
            let run = builder.run_source(&func).map_err(|e| e.to_string())?;
            if args.print_after_all {
                // The snapshots end with the final pass's IR; don't print
                // it twice.
                print!("{}", run.report.render_snapshots());
            } else if let Some(ir) = run.state.current_ir() {
                print!("{}", pretty::pretty(ir));
            }
            if args.time_passes {
                eprint!("{}", run.report.render_timings());
            }
            if args.lint_after_all {
                eprint!("{}", run.report.render_lint());
            }
            if let Some(c) = &run.state.compiled {
                eprintln!(
                    "// {} regions, {} fwd layers, {} duplicated slots, {} merged tape bytes",
                    c.stats.regions,
                    c.stats.fwd_layers,
                    c.stats.duplicated_slots,
                    c.stats.merged_tape_bytes
                );
                if let Some(enc) = &c.encoding {
                    eprintln!(
                        "// tape-compress: elided {} slots, narrowed {}, tape bytes {} -> {}",
                        enc.elided_slots, enc.narrowed_slots, enc.bytes_before, enc.bytes_after
                    );
                }
            }
        }
        "simulate" => {
            let (opts, setup) = compile_variants(&args, &input)?;
            let base = base_memory(&input);
            let cfg = SystemConfig::with_cache_bytes(args.cache_bytes);
            let mut reports = Vec::new();
            for (label, f, barrier) in [
                ("Enzyme", &setup.grad.func, setup.grad.phase_barrier),
                (
                    "Tapeflow",
                    &setup.compiled.func,
                    setup.compiled.phase_barrier,
                ),
            ] {
                let mut mem = variant_memory(&func, f, &base, &setup.grad, &opts);
                let trace = trace_function(
                    f,
                    &mut mem,
                    TraceOptions {
                        phase_barrier: Some(barrier),
                    },
                )
                .map_err(|e| e.to_string())?;
                let r = try_simulate_probed_with(
                    args.engine,
                    &trace,
                    &cfg,
                    &SimOptions::default(),
                    &mut NoProbe,
                )
                .map_err(|e| e.to_string())?;
                println!(
                    "{label:<8} cycles {:>10}  dram bytes {:>10}  on-chip pJ {:>12.0}  rev hit {:.1}%",
                    r.cycles,
                    r.dram_bytes(),
                    r.energy.on_chip_pj(),
                    r.cache.rev_hit_rate() * 100.0
                );
                reports.push(r);
            }
            println!(
                "speedup {:.2}x, energy reduction {:.2}x",
                reports[1].speedup_over(&reports[0]),
                reports[0].energy.on_chip_pj() / reports[1].energy.on_chip_pj().max(1.0)
            );
            if let Some(path) = &args.json {
                let mut doc = Value::object();
                doc.set("schema", "tapeflow.cli.simulate/v1")
                    .set("cache_bytes", args.cache_bytes)
                    .set("spad_bytes", args.spad_bytes)
                    .set("passes", Value::Arr(passes_json(&setup.report.records)));
                if let Some(enc) = &setup.compiled.encoding {
                    doc.set("compression", compression_json(enc));
                }
                doc.set("enzyme", reports[0].to_json())
                    .set("tapeflow", reports[1].to_json())
                    .set("speedup", reports[1].speedup_over(&reports[0]));
                std::fs::write(path, doc.render())
                    .map_err(|e| format!("cannot write {path}: {e}"))?;
                eprintln!("// machine-readable report: {path}");
            }
        }
        "profile" => {
            // Output paths are validated before anything expensive runs:
            // a typo'd directory is a usage error (exit 2), not a panic
            // after a minutes-long Large-scale simulation.
            for (flag, path) in [
                ("--trace-out", args.trace_out.as_deref()),
                ("--json", args.json.as_deref()),
                ("--flame-out", args.flame_out.as_deref()),
            ] {
                if let Some(p) = path {
                    check_writable(flag, p)?;
                }
            }
            let by_inst = args.by_inst || args.flame_out.is_some();
            let (opts, setup) = compile_variants(&args, &input)?;
            let base = base_memory(&input);
            let cfg = SystemConfig::with_cache_bytes(args.cache_bytes);
            let variants = [
                ("Enzyme", &setup.grad.func, setup.grad.phase_barrier),
                (
                    "Tapeflow",
                    &setup.compiled.func,
                    setup.compiled.phase_barrier,
                ),
            ];
            let mut rows: Vec<(&str, SimReport, CycleBreakdown)> = Vec::new();
            let mut inst_rows: Vec<Vec<attr::InstAttr>> = Vec::new();
            let mut recorders: Vec<TraceRecorder> = Vec::new();
            let mut samplers: Vec<SamplingProbe> = Vec::new();
            for (pid, (label, f, barrier)) in variants.iter().copied().enumerate() {
                let mut mem = variant_memory(&func, f, &base, &setup.grad, &opts);
                let trace = trace_function(
                    f,
                    &mut mem,
                    TraceOptions {
                        phase_barrier: Some(barrier),
                    },
                )
                .map_err(|e| e.to_string())?;
                let attr_probe = if by_inst {
                    // The trace is the node → instruction back-map; the
                    // probe splits the same PE-cycle budget one level
                    // finer along it.
                    AttributionProbe::with_inst_map(attr::node_to_inst(&trace), f.insts().len())
                } else {
                    AttributionProbe::new()
                };
                let recorder = (args.trace_out.is_some() && args.sample.is_none())
                    .then(|| TraceRecorder::new(pid as u64 + 1, label));
                let sampler =
                    args.trace_out.as_ref().and(args.sample).map(|stride| {
                        SamplingProbe::new(pid as u64 + 1, label, SAMPLE_WINDOW, stride)
                    });
                let mut probe = (attr_probe, (recorder, sampler));
                let r = try_simulate_probed_with(
                    args.engine,
                    &trace,
                    &cfg,
                    &SimOptions::default(),
                    &mut probe,
                )
                .map_err(|e| e.to_string())?;
                let (attr_probe, (recorder, sampler)) = probe;
                let (bd, inst_bd) = attr_probe.into_parts();
                bd.check()
                    .map_err(|e| format!("{label}: cycle attribution broke its invariant: {e}"))?;
                if let Some(ib) = inst_bd {
                    ib.check_against(&bd).map_err(|e| {
                        format!("{label}: per-inst attribution broke its invariant: {e}")
                    })?;
                    inst_rows.push(attr::resolve(f, Some(&func), &ib));
                }
                recorders.extend(recorder);
                samplers.extend(sampler);
                rows.push((label, r, bd));
            }
            print!("{}", render_stall_table(&rows));
            if by_inst {
                for (i, (label, _, bd)) in rows.iter().enumerate() {
                    print!(
                        "{}",
                        attr::render_hot_spots(label, &inst_rows[i], bd.total_units(), args.top)
                    );
                }
            }
            print!("{}", render_pass_deltas(&setup.report));
            println!("speedup {:.2}x", rows[1].1.speedup_over(&rows[0].1));
            if let Some(path) = &args.flame_out {
                let mut lines = Vec::new();
                for (i, (label, _, _)) in rows.iter().enumerate() {
                    lines.extend(attr::flame_lines(label, &inst_rows[i]));
                }
                std::fs::write(path, lines.join("\n") + "\n")
                    .map_err(|e| format!("cannot write {path}: {e}"))?;
                eprintln!(
                    "// collapsed-stack flamegraph: {path} \
                     (render with inferno, flamegraph.pl or speedscope)"
                );
            }
            let sample_fractions: Vec<f64> =
                samplers.iter().map(|s| s.recorded_fraction()).collect();
            if let Some(path) = &args.trace_out {
                let doc = if args.sample.is_some() {
                    SamplingProbe::chrome_trace(samplers)
                } else {
                    TraceRecorder::chrome_trace(recorders)
                };
                std::fs::write(path, doc.render())
                    .map_err(|e| format!("cannot write {path}: {e}"))?;
                eprintln!(
                    "// chrome trace: {path} (load in chrome://tracing or https://ui.perfetto.dev)"
                );
                if let Some(stride) = args.sample {
                    eprintln!(
                        "// sampled timeline: 1 in {stride} windows of {SAMPLE_WINDOW} cycles \
                         ({:.1}% / {:.1}% of cycles recorded)",
                        sample_fractions[0] * 100.0,
                        sample_fractions[1] * 100.0
                    );
                }
            }
            if let Some(path) = &args.json {
                let mut doc = Value::object();
                let variant = |i: usize| {
                    let row = &rows[i];
                    let mut v = Value::object();
                    v.set("report", row.1.to_json())
                        .set("stalls", row.2.to_json())
                        .set("provenance", attr::provenance_json(variants[i].1));
                    if by_inst {
                        v.set(
                            "insts",
                            Value::Arr(attr::rows_json(&inst_rows[i], args.top)),
                        );
                    }
                    v
                };
                doc.set("schema", "tapeflow.cli.profile/v2")
                    .set("cache_bytes", args.cache_bytes)
                    .set("spad_bytes", args.spad_bytes)
                    .set("passes", Value::Arr(passes_json(&setup.report.records)));
                if let Some(enc) = &setup.compiled.encoding {
                    doc.set("compression", compression_json(enc));
                }
                if let Some(stride) = args.sample {
                    let mut s = Value::object();
                    s.set("stride", stride)
                        .set("window_cycles", SAMPLE_WINDOW)
                        .set(
                            "recorded_fraction",
                            Value::Arr(sample_fractions.iter().map(|&f| Value::from(f)).collect()),
                        );
                    doc.set("sample", s);
                }
                doc.set("enzyme", variant(0))
                    .set("tapeflow", variant(1))
                    .set("speedup", rows[1].1.speedup_over(&rows[0].1));
                std::fs::write(path, doc.render())
                    .map_err(|e| format!("cannot write {path}: {e}"))?;
                eprintln!("// machine-readable report: {path}");
            }
        }
        "lint" => {
            let mode = if args.aos_only {
                CompileMode::AosOnly
            } else {
                CompileMode::Full
            };
            let copts = compile_options(&args, mode);
            let cfg = lint_config(&copts);
            // Already-lowered IR (tape/scratchpad/stream ops present) is
            // linted directly; a plain source program with a gradient spec
            // is compiled first so the lints see the post-pipeline
            // FWD/REV function and the layer plan.
            let lowered = func.insts().iter().any(|i| {
                matches!(
                    i.op,
                    Op::SAlloc { .. }
                        | Op::SpadLoad
                        | Op::SpadStore
                        | Op::StreamIn(_)
                        | Op::StreamOut(_)
                )
            }) || func.arrays_of_kind(ArrayKind::Tape).next().is_some();
            let has_grad_spec = input.bench.is_some() || !args.wrt.is_empty();
            let mut diags;
            // Whichever path runs leaves behind the analysed function +
            // its ranges (for the v2 census), the narrowing decisions,
            // and the variants the dynamic oracle executes.
            let mut analysed: Option<(Function, vra::ValueRanges)> = None;
            let mut encoding: Option<TapeEncoding> = None;
            let mut enc_grad: Option<Gradient> = None;
            let mut oracle: Vec<(&str, Function, Memory)> = Vec::new();
            if lowered || !has_grad_spec {
                diags = lint::lint_function(&func, &cfg);
                let ranges = vra::value_ranges(&func);
                diags.extend(ranges.diagnostics.iter().cloned());
                lint::sort_diagnostics(&mut diags);
                if args.check_dynamic {
                    oracle.push(("program", func.clone(), base_memory(&input)));
                }
                analysed = Some((func.clone(), ranges));
            } else {
                let default_names = lint_pass_names(&args);
                let builder = pipeline_for(&args, &input, copts, &default_names)?.with_verify(true);
                let run = builder.run_source(&func).map_err(|e| e.to_string())?;
                if args.lint_after_all {
                    eprint!("{}", run.report.render_lint());
                }
                let compiled = run
                    .state
                    .current_ir()
                    .ok_or("the lint pipeline produced no IR")?;
                diags = lint::lint_function(compiled, &cfg);
                if let (Some(grad), Some(plan)) = (&run.state.gradient, &run.state.plan) {
                    diags.extend(plan_lint::lint_plan(
                        grad,
                        plan,
                        &copts,
                        run.state.encoding.as_ref(),
                    ));
                }
                if let Some(r) = &run.state.ranges {
                    diags.extend(r.diagnostics.iter().cloned());
                }
                lint::sort_diagnostics(&mut diags);
                if let Some(grad) = &run.state.gradient {
                    if args.check_dynamic {
                        let opts = ad_options(&input, &args)?;
                        let base = base_memory(&input);
                        oracle.push(("source", func.clone(), base.clone()));
                        oracle.push((
                            "gradient",
                            grad.func.clone(),
                            variant_memory(&func, &grad.func, &base, grad, &opts),
                        ));
                    }
                    if let Some(r) = &run.state.ranges {
                        // The pipeline's artifact is computed over the
                        // gradient function (see ValueRangesPass).
                        analysed = Some((grad.func.clone(), r.clone()));
                    }
                    enc_grad = Some(grad.clone());
                }
                encoding = run.state.encoding.clone();
            }
            let (errors, warnings) = lint::counts(&diags);
            print!("{}", lint::render_table(&diags));
            println!("{}: {errors} error(s), {warnings} warning(s)", args.file);
            let mut escapes = 0usize;
            if args.check_dynamic {
                println!("=== dynamic range oracle ===");
                for (label, f, mut mem) in oracle {
                    let (line, n) = oracle_run(label, &f, &mut mem)?;
                    println!("{line}");
                    escapes += n;
                }
                println!(
                    "dynamic oracle: {escapes} escape(s){}",
                    if escapes > 0 {
                        " — the static analysis (or an input annotation) is UNSOUND"
                    } else {
                        ""
                    }
                );
            }
            if let Some(path) = &args.json {
                let ds: Vec<Value> = diags
                    .iter()
                    .map(|d| {
                        let mut o = Value::object();
                        o.set("rule", d.rule)
                            .set("severity", d.severity.label())
                            .set("inst", d.span.inst.map_or(Value::Null, Value::from))
                            .set("array", d.span.array.map_or(Value::Null, Value::from))
                            .set("message", d.message.as_str());
                        o
                    })
                    .collect();
                let mut doc = Value::object();
                doc.set("schema", "tapeflow.cli.lint/v2")
                    .set("program", args.file.as_str())
                    .set("spad_entries", cfg.spad_entries)
                    .set("spad_banks", cfg.spad_banks)
                    .set("errors", errors)
                    .set("warnings", warnings)
                    .set("diagnostics", Value::Arr(ds));
                if let Some((f, r)) = &analysed {
                    doc.set(
                        "ranges",
                        ranges_json(f, r, enc_grad.as_ref(), encoding.as_ref()),
                    );
                }
                if args.check_dynamic {
                    doc.set("dynamic_escapes", escapes);
                }
                std::fs::write(path, doc.render())
                    .map_err(|e| format!("cannot write {path}: {e}"))?;
                eprintln!("// machine-readable report: {path}");
            }
            if errors > 0 || escapes > 0 {
                return Ok(ExitCode::FAILURE);
            }
        }
        other => return Err(format!("unknown command {other:?}")),
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("tapeflow: {e}");
            usage()
        }
    }
}
