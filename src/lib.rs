//! # tapeflow
//!
//! Facade crate re-exporting the full Tapeflow reproduction API.
//! See the individual crates for details.

pub use tapeflow_autodiff as autodiff;
pub use tapeflow_bench as bench;
pub use tapeflow_benchmarks as benchmarks;
pub use tapeflow_core as core;
pub use tapeflow_ir as ir;
pub use tapeflow_sim as sim;
