// A miniature pathfinder row relaxation: dst[c] = w[c] + min3(src)
// with clamped neighbour indices — data-dependent gradient routing.
func @pathrow {
  array @0 w : f64[32] (Input)
  array @1 src : f64[32] (Input)
  array @2 loss : f64[1] (Output)
  for c in 0..32 step 1 {
    %0 = iadd c -1i
    %1 = imax %0 0i
    %2 = iadd c 1i
    %3 = imin %2 31i
    %4 = load @1 %1
    %5 = load @1 c
    %6 = load @1 %3
    %7 = fmin %4 %5
    %8 = fmin %7 %6
    %9 = load @0 c
    %10 = fadd %9 %8
    %11 = load @2 0i
    %12 = fadd %11 %10
    store @2 0i %12
  }
}
