// loss = sum_i tanh(exp(x_i))^2 — a small streaming kernel
func @sumexp {
  array @0 x : f64[256] (Input)
  array @1 loss : f64[1] (Output)
  for i in 0..256 step 1 {
    %0 = load @0 i
    %1 = exp %0
    %2 = tanh %1
    %3 = fmul %2 %2
    %4 = load @1 0i
    %5 = fadd %4 %3
    store @1 0i %5
  }
}
