//! Trains the mass-spring controller (the paper's DiffTaichi-style
//! benchmark) with gradients computed by the **Tapeflow-compiled**
//! program — demonstrating that the streamed-tape program is a drop-in
//! replacement for the plain gradient function, while reporting what the
//! streaming would cost on the modelled accelerator.
//!
//! ```text
//! cargo run --release --example mass_spring_training
//! ```

use tapeflow::benchmarks::{by_name, Scale};
use tapeflow::core::{compile, CompileOptions};
use tapeflow::ir::trace::{trace_function, TraceOptions};
use tapeflow::ir::{ArrayId, Memory};
use tapeflow::sim::{simulate, SimOptions, SystemConfig};

fn main() {
    let bench = by_name("mass_spring", Scale::Small);
    let grad = bench.gradient();
    let compiled = compile(&grad, &CompileOptions::default()).expect("compiles");
    println!(
        "mass_spring: {} | {} regions, {} fwd layers, tape {} bytes",
        bench.params,
        compiled.stats.regions,
        compiled.stats.fwd_layers,
        compiled.stats.merged_tape_bytes
    );

    let (w1, w2) = (bench.wrt[0], bench.wrt[1]);
    let mut w1v = bench.mem.get_f64(w1);
    let mut w2v = bench.mem.get_f64(w2);
    let lr = 0.05;

    for epoch in 0..15 {
        // Fresh memory for the compiled gradient program each epoch.
        let mut mem = Memory::for_function(&compiled.func);
        for i in 0..bench.func.arrays().len() {
            mem.clone_array_from(&bench.mem, ArrayId::new(i));
        }
        mem.set_f64(w1, &w1v);
        mem.set_f64(w2, &w2v);
        mem.set_f64_at(grad.shadow_of(bench.loss.array).unwrap(), 0, 1.0);
        tapeflow::ir::interp::run(&compiled.func, &mut mem).expect("runs");
        let loss = mem.get_f64_at(bench.loss.array, 0);
        let d1 = mem.get_f64(grad.shadow_of(w1).unwrap());
        let d2 = mem.get_f64(grad.shadow_of(w2).unwrap());
        println!("epoch {epoch:>2}: loss = {loss:.6}");
        for (w, d) in w1v.iter_mut().zip(&d1) {
            *w -= lr * d;
        }
        for (w, d) in w2v.iter_mut().zip(&d2) {
            *w -= lr * d;
        }
    }

    // One simulated step on the accelerator, both memory systems.
    let mut mem = Memory::for_function(&compiled.func);
    for i in 0..bench.func.arrays().len() {
        mem.clone_array_from(&bench.mem, ArrayId::new(i));
    }
    mem.set_f64_at(grad.shadow_of(bench.loss.array).unwrap(), 0, 1.0);
    let tf_trace = trace_function(
        &compiled.func,
        &mut mem,
        TraceOptions {
            phase_barrier: Some(compiled.phase_barrier),
        },
    )
    .expect("traces");
    let mut mem2 = bench.gradient_memory(&grad);
    let ez_trace = trace_function(
        &grad.func,
        &mut mem2,
        TraceOptions {
            phase_barrier: Some(grad.phase_barrier),
        },
    )
    .expect("traces");
    let cfg = SystemConfig::baseline_32k();
    let tf = simulate(&tf_trace, &cfg, &SimOptions::default());
    let ez = simulate(&ez_trace, &cfg, &SimOptions::default());
    println!(
        "one training step on the accelerator: Enzyme_32k {} cycles vs Tflow_32k {} cycles ({:.2}x)",
        ez.cycles,
        tf.cycles,
        tf.speedup_over(&ez)
    );
}
