//! Quickstart: differentiate a function, stream its tape, simulate both
//! memory systems.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use tapeflow::autodiff::{differentiate, AdOptions, TapePolicy};
use tapeflow::core::{compile, CompileOptions};
use tapeflow::ir::trace::{trace_function, TraceOptions};
use tapeflow::ir::{ArrayId, ArrayKind, FunctionBuilder, Memory, Scalar};
use tapeflow::sim::{simulate, SimOptions, SystemConfig};

fn main() {
    // 1. Write a forward function in the IR: loss = sum_i tanh(exp(x_i))^2.
    let n = 1024;
    let mut b = FunctionBuilder::new("quickstart");
    let x = b.array("x", n, ArrayKind::Input, Scalar::F64);
    let loss = b.array("loss", 1, ArrayKind::Output, Scalar::F64);
    b.for_loop("i", 0, n as i64, |b, i| {
        let xi = b.load(x, i);
        let e = b.exp(xi);
        let t = b.tanh(e);
        let sq = b.fmul(t, t);
        let c = b.load_cell(loss);
        let s = b.fadd(c, sq);
        b.store_cell(loss, s);
    });
    let f = b.finish();

    // 2. Reverse-mode AD (the Enzyme substitute): FWD + tape + REV.
    let grad = differentiate(
        &f,
        &AdOptions::new(vec![x], vec![loss]).with_policy(TapePolicy::Conservative),
    )
    .expect("differentiable");
    println!(
        "gradient function: {} taped values, {} tape bytes, {} recomputed",
        grad.stats.taped_values, grad.stats.tape_bytes, grad.stats.recomputed_values
    );

    // 3. The Tapeflow passes: AoS regions, layers, streams, scratchpad.
    let compiled = compile(&grad, &CompileOptions::default()).expect("compiles");
    println!(
        "tapeflow program: {} regions, {} forward layers, {} duplicated slots",
        compiled.stats.regions, compiled.stats.fwd_layers, compiled.stats.duplicated_slots
    );

    // 4. Execute both programs (they compute bit-identical gradients).
    let inputs: Vec<f64> = (0..n).map(|i| (i as f64) * 0.001 - 0.5).collect();
    let run = |func: &tapeflow::ir::Function, barrier| {
        let mut mem = Memory::for_function(func);
        mem.clone_array_from(
            &{
                let mut m = Memory::for_function(&f);
                m.set_f64(x, &inputs);
                m
            },
            ArrayId::new(0),
        );
        mem.set_f64_at(grad.shadow_of(loss).unwrap(), 0, 1.0);
        let trace = trace_function(
            func,
            &mut mem,
            TraceOptions {
                phase_barrier: Some(barrier),
            },
        )
        .expect("executes");
        let d = mem.get_f64(grad.shadow_of(x).unwrap());
        (trace, d)
    };
    let (enzyme_trace, d_enzyme) = run(&grad.func, grad.phase_barrier);
    let (tapeflow_trace, d_tapeflow) = run(&compiled.func, compiled.phase_barrier);
    assert_eq!(d_enzyme, d_tapeflow, "same gradients, bit for bit");
    println!("d_x[0..4] = {:?}", &d_enzyme[..4]);

    // 5. Simulate on the spatial accelerator with an 8 KB cache.
    let cfg = SystemConfig::with_cache_bytes(8 * 1024);
    let ez = simulate(&enzyme_trace, &cfg, &SimOptions::default());
    let tf = simulate(&tapeflow_trace, &cfg, &SimOptions::default());
    println!(
        "Enzyme_8k : {} cycles, {} DRAM bytes, {:.1} nJ on-chip",
        ez.cycles,
        ez.dram_bytes(),
        ez.energy.on_chip_pj() / 1000.0
    );
    println!(
        "Tflow_8k  : {} cycles, {} DRAM bytes, {:.1} nJ on-chip",
        tf.cycles,
        tf.dram_bytes(),
        tf.energy.on_chip_pj() / 1000.0
    );
    println!(
        "speedup {:.2}x, on-chip energy reduction {:.2}x",
        tf.speedup_over(&ez),
        ez.energy.on_chip_pj() / tf.energy.on_chip_pj()
    );
}
