//! The paper's Figure 1.1 inverse problem: find launch parameters that
//! make a simulated projectile hit a target, by gradient descent through
//! a differentiated physics model.
//!
//! The forward model integrates drag-affected ballistics for a fixed
//! number of steps; AD supplies `d(miss distance)/d(vx0, vy0)` and plain
//! gradient descent drives the miss to (near) zero.
//!
//! ```text
//! cargo run --release --example cannonball
//! ```

use tapeflow::autodiff::{differentiate, AdOptions};
use tapeflow::ir::{ArrayKind, FunctionBuilder, Memory, Scalar};

const STEPS: i64 = 60;
const DT: f64 = 0.05;
const DRAG: f64 = 0.05;
const GRAVITY: f64 = -9.81;
const TARGET_X: f64 = 18.0;

fn main() {
    // Forward model: integrate (x, y, vx, vy) and measure miss = (x_T -
    // target)^2 + y_T^2 (we want it to land *at* the target).
    let mut b = FunctionBuilder::new("cannon");
    let v0 = b.array("v0", 2, ArrayKind::Input, Scalar::F64); // [vx0, vy0]
    let loss = b.array("loss", 1, ArrayKind::Output, Scalar::F64);
    let x = b.cell_f64("x", 0.0);
    let y = b.cell_f64("y", 0.0);
    let vx = b.array("vx", 1, ArrayKind::Temp, Scalar::F64);
    let vy = b.array("vy", 1, ArrayKind::Temp, Scalar::F64);
    let zero = b.i64(0);
    let one = b.i64(1);
    let init_vx = b.load(v0, zero);
    b.store_cell(vx, init_vx);
    let init_vy = b.load(v0, one);
    b.store_cell(vy, init_vy);
    b.for_loop("t", 0, STEPS, |b, _| {
        let dt = b.f64(DT);
        let g = b.f64(GRAVITY);
        let drag = b.f64(-DRAG);
        let cvx = b.load_cell(vx);
        let cvy = b.load_cell(vy);
        // v += dt * (g_vec + drag * v)
        let ax = b.fmul(drag, cvx);
        let dvy = b.fmul(drag, cvy);
        let ay = b.fadd(g, dvy);
        let dxv = b.fmul(dt, ax);
        let nvx = b.fadd(cvx, dxv);
        b.store_cell(vx, nvx);
        let dyv = b.fmul(dt, ay);
        let nvy = b.fadd(cvy, dyv);
        b.store_cell(vy, nvy);
        // p += dt * v
        let cx = b.load_cell(x);
        let dx = b.fmul(dt, nvx);
        let nx = b.fadd(cx, dx);
        b.store_cell(x, nx);
        let cy = b.load_cell(y);
        let dy = b.fmul(dt, nvy);
        let ny = b.fadd(cy, dy);
        b.store_cell(y, ny);
    });
    let fx = b.load_cell(x);
    let fy = b.load_cell(y);
    let tx = b.f64(TARGET_X);
    let ex = b.fsub(fx, tx);
    let ex2 = b.fmul(ex, ex);
    let ey2 = b.fmul(fy, fy);
    let miss = b.fadd(ex2, ey2);
    b.store_cell(loss, miss);
    let f = b.finish();

    let grad = differentiate(&f, &AdOptions::new(vec![v0], vec![loss])).expect("differentiable");
    println!(
        "physics model: {} timesteps, tape {} bytes per shot",
        STEPS, grad.stats.tape_bytes
    );

    // Gradient descent on the launch velocity.
    let mut params = [8.0f64, 8.0];
    let lr = 0.02;
    for epoch in 0..60 {
        let mut mem = Memory::for_function(&grad.func);
        mem.set_f64(v0, &params);
        mem.set_f64_at(grad.shadow_of(loss).unwrap(), 0, 1.0);
        tapeflow::ir::interp::run(&grad.func, &mut mem).expect("runs");
        let miss = mem.get_f64_at(loss, 0);
        let d = mem.get_f64(grad.shadow_of(v0).unwrap());
        if epoch % 10 == 0 {
            println!(
                "epoch {epoch:>3}: miss² = {miss:>9.4}  v0 = ({:.3}, {:.3})  grad = ({:+.3}, {:+.3})",
                params[0], params[1], d[0], d[1]
            );
        }
        params[0] -= lr * d[0];
        params[1] -= lr * d[1];
        if miss < 1e-6 {
            println!("hit the target after {epoch} epochs");
            break;
        }
    }
    // Final report.
    let mut mem = Memory::for_function(&grad.func);
    mem.set_f64(v0, &params);
    mem.set_f64_at(grad.shadow_of(loss).unwrap(), 0, 1.0);
    tapeflow::ir::interp::run(&grad.func, &mut mem).expect("runs");
    println!(
        "final: v0 = ({:.3}, {:.3}), miss² = {:.6}",
        params[0],
        params[1],
        mem.get_f64_at(loss, 0)
    );
}
