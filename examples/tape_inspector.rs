//! A compiler developer's view: print a function, its gradient, and the
//! Tapeflow-compiled program side by side, with per-pass artifacts (the
//! regions, the layer plan and the tape characterization).
//!
//! ```text
//! cargo run --release --example tape_inspector
//! ```

use tapeflow::autodiff::{differentiate, AdOptions};
use tapeflow::core::layering::RegionLayout;
use tapeflow::core::{compile, CompileOptions};
use tapeflow::ir::trace::{trace_function, TraceOptions};
use tapeflow::ir::{analysis, pretty, ArrayKind, FunctionBuilder, Memory, Scalar};

fn main() {
    // The paper's Figure 3.2 shape: a small 1-D convolution.
    let (n, k) = (12usize, 3usize);
    let out_n = n - k + 1;
    let mut b = FunctionBuilder::new("conv1d");
    let img = b.array("image", n, ArrayKind::Input, Scalar::F64);
    let fil = b.array("fil", k, ArrayKind::Input, Scalar::F64);
    let res = b.array("res", out_n, ArrayKind::Output, Scalar::F64);
    let loss = b.array("loss", 1, ArrayKind::Output, Scalar::F64);
    let acc = b.cell_f64("acc", 0.0);
    b.for_loop("i", 0, out_n as i64, |b, i| {
        let zero = b.f64(0.0);
        b.store_cell(acc, zero);
        b.for_loop("j", 0, k as i64, |b, j| {
            let idx = b.iadd(i, j);
            let iv = b.load(img, idx);
            let fv = b.load(fil, j);
            let p = b.fmul(iv, fv);
            let c = b.load_cell(acc);
            let s = b.fadd(c, p);
            b.store_cell(acc, s);
        });
        let r = b.load_cell(acc);
        b.store(res, i, r);
        let sq = b.fmul(r, r);
        let c = b.load_cell(loss);
        let s = b.fadd(c, sq);
        b.store_cell(loss, s);
    });
    let f = b.finish();
    println!("---- original function ----\n{}", pretty::pretty(&f));

    let grad = differentiate(&f, &AdOptions::new(vec![fil], vec![loss])).expect("differentiable");
    println!(
        "---- gradient function (Enzyme layout: one SoA tape array per value) ----\n{}",
        pretty::pretty(&grad.func)
    );
    for (i, t) in grad.tapes.iter().enumerate() {
        println!(
            "tape T{i}: {} elements, loop path depth {}, {} REV loads{}",
            t.trip_product,
            t.fwd_loop_path.len(),
            t.loads.len(),
            if t.as_int { " (int round-trip)" } else { "" }
        );
    }

    // Tape characterization (the paper's Chapter 2 analyses).
    let mut mem = Memory::for_function(&grad.func);
    mem.set_f64(img, &(0..n).map(|i| i as f64 * 0.1).collect::<Vec<_>>());
    mem.set_f64(fil, &[0.25, 0.5, 0.25]);
    mem.set_f64_at(grad.shadow_of(loss).unwrap(), 0, 1.0);
    let trace = trace_function(
        &grad.func,
        &mut mem,
        TraceOptions {
            phase_barrier: Some(grad.phase_barrier),
        },
    )
    .expect("traces");
    let stats = analysis::trace_stats(&trace);
    println!(
        "characterization: {} nodes, tape = {:.0}% of memory accesses, working set {} B",
        stats.nodes,
        stats.tape_access_fraction() * 100.0,
        stats.max_live_bytes
    );
    let lt = analysis::edge_lifetimes(&trace, &analysis::node_index_times(&trace));
    println!(
        "edge lifetimes (topological): tape {:.1} vs fwd {:.1} ({:.1}x)",
        lt.tape_avg,
        lt.fwd_avg,
        lt.tape_over_fwd()
    );

    // Compile with a deliberately small scratchpad to show layering.
    let compiled = compile(&grad, &CompileOptions::with_spad_bytes(128)).expect("compiles");
    println!(
        "---- tapeflow program (128 B scratchpad) ----\n{}",
        pretty::pretty(&compiled.func)
    );
    for (i, rp) in compiled.plan.regions.iter().enumerate() {
        let shape = match &rp.layout {
            RegionLayout::Tiled {
                tile_iters,
                collapse,
                inner_prod,
            } => format!(
                "tiled: {tile_iters} iters/layer, {collapse} collapsed loops (x{inner_prod})"
            ),
            RegionLayout::Segmented { segments } => {
                format!("segmented into {} statement segments", segments.len())
            }
            RegionLayout::LayoutOnly => "layout only".into(),
        };
        println!(
            "region R{i}: {} slots/iter, {} structs, spad [{}..{}), {}",
            rp.rsize_total,
            rp.region.trip_product,
            rp.spad_base,
            rp.spad_base + rp.spad_range,
            shape
        );
    }
    println!(
        "total: {} forward layers, {} duplicated slots, {} merged tape bytes",
        compiled.stats.fwd_layers,
        compiled.stats.duplicated_slots,
        compiled.stats.merged_tape_bytes
    );
}
