#!/usr/bin/env bash
# Repo CI: formatting, lints, and the tier-1 verify (ROADMAP.md).
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (workspace, -D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1 verify =="
cargo build --release
cargo test -q

echo "== workspace tests =="
cargo test --workspace -q

echo "== experiments regression (tiny scale, stable JSON) =="
# Regenerate the machine-readable results at tiny scale with every
# wall-clock field zeroed and diff against the checked-in reference.
# Catches perf-model / accounting drift that unit tests miss.
mkdir -p target/ci
cargo run --release -p tapeflow-bench --bin experiments -- \
    all --scale tiny --jobs 2 --stable-json \
    --json target/ci/BENCH_experiments_tiny.json > /dev/null
if ! diff -u results/BENCH_experiments_tiny.json \
        target/ci/BENCH_experiments_tiny.json > target/ci/experiments.diff; then
    echo "experiments output drifted from results/BENCH_experiments_tiny.json:"
    head -n 60 target/ci/experiments.diff
    echo "(full diff: target/ci/experiments.diff; if the change is intended," \
         "bless it with: cp target/ci/BENCH_experiments_tiny.json" \
         "results/BENCH_experiments_tiny.json)"
    exit 1
fi

echo "CI green."
