#!/usr/bin/env bash
# Repo CI: formatting, lints, and the tier-1 verify (ROADMAP.md).
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (workspace, -D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1 verify =="
cargo build --release
cargo test -q

echo "== workspace tests =="
cargo test --workspace -q

echo "== profile smoke (stall attribution + chrome trace) =="
# The profile subcommand must run end to end: the invariant-checked
# stall table, a machine-readable report, and a Chrome trace that the
# structural validator (tests/profile_cli.rs) accepts — parseable,
# complete slices, monotonic per-track timestamps.
mkdir -p target/ci
cargo run --release --bin tapeflow -- \
    profile programs/sumexp.tf --wrt x --loss loss \
    --trace-out target/ci/profile_sumexp_trace.json \
    --json target/ci/profile_sumexp.json > /dev/null
python3 - target/ci/profile_sumexp.json <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "tapeflow.cli.profile/v1", doc.get("schema")
for variant in ("enzyme", "tapeflow"):
    s = doc[variant]["stalls"]
    kinds = ("fp_busy", "int_busy", "mshr_stall", "spad_conflict",
             "tape_miss_stall", "cache_miss_stall", "stream_wait",
             "phase_barrier", "idle")
    assert sum(s[k] for k in kinds) == s["cycles"] * s["pes"], variant
assert doc["passes"], "per-pass deltas missing"
EOF
TAPEFLOW_TRACE_VALIDATE=target/ci/profile_sumexp_trace.json \
    cargo test -q --release --test profile_cli validates_trace_file_from_env

echo "== lint smoke (all registered benchmarks) =="
# Every in-tree benchmark must lint clean at the default config — any
# error-severity finding makes `tapeflow lint` exit 1 and fails CI under
# `set -e`. The machine-readable report is schema-checked like the
# profile JSON above.
for b in gravity nn logsum matdescent mttkrp somier lenet5 pathfinder mass_spring; do
    cargo run --release --bin tapeflow -- lint "$b" --scale tiny > /dev/null
done
cargo run --release --bin tapeflow -- \
    lint logsum --scale tiny --json target/ci/lint_logsum.json > /dev/null
python3 - target/ci/lint_logsum.json <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "tapeflow.cli.lint/v1", doc.get("schema")
assert doc["errors"] == 0 and doc["warnings"] == 0, doc
assert isinstance(doc["diagnostics"], list) and not doc["diagnostics"]
for key in ("program", "spad_entries", "spad_banks"):
    assert key in doc, key
EOF

echo "== experiments regression (tiny scale, stable JSON) =="
# Regenerate the machine-readable results at tiny scale with every
# wall-clock field zeroed and diff against the checked-in reference —
# stall breakdowns included (cycle counters, so byte-stable by
# construction). Catches perf-model / accounting drift that unit tests
# miss.
cargo run --release -p tapeflow-bench --bin experiments -- \
    all --scale tiny --jobs 2 --stable-json --stall-breakdown \
    --json target/ci/BENCH_experiments_tiny.json > /dev/null
if ! diff -u results/BENCH_experiments_tiny.json \
        target/ci/BENCH_experiments_tiny.json > target/ci/experiments.diff; then
    echo "experiments output drifted from results/BENCH_experiments_tiny.json:"
    head -n 60 target/ci/experiments.diff
    echo "(full diff: target/ci/experiments.diff; if the change is intended," \
         "bless it with: cp target/ci/BENCH_experiments_tiny.json" \
         "results/BENCH_experiments_tiny.json)"
    exit 1
fi

echo "CI green."
