#!/usr/bin/env bash
# Repo CI: formatting, lints, and the tier-1 verify (ROADMAP.md).
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (workspace, -D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1 verify =="
cargo build --release
cargo test -q

echo "== workspace tests =="
cargo test --workspace -q

echo "== profile smoke (stall attribution + provenance + chrome trace) =="
# The profile subcommand must run end to end: the invariant-checked
# stall table, source-attributed hot spots, a machine-readable report,
# a collapsed-stack flamegraph, and a Chrome trace that the structural
# validator (tests/profile_cli.rs) accepts — parseable, complete
# slices, monotonic per-track timestamps.
mkdir -p target/ci
cargo run --release --bin tapeflow -- \
    profile programs/sumexp.tf --wrt x --loss loss \
    --by-inst --top 8 \
    --trace-out target/ci/profile_sumexp_trace.json \
    --flame-out target/ci/profile_sumexp.folded \
    --json target/ci/profile_sumexp.json > target/ci/profile_sumexp.txt
# The hot-spot table is pinned: the per-inst rollup must match the
# golden snapshot byte for byte (side-channel notes go to stderr, so
# this stdout is the same as the golden test's invocation).
diff -u tests/golden/profile_by_inst_sumexp.txt target/ci/profile_sumexp.txt
python3 - target/ci/profile_sumexp.json <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "tapeflow.cli.profile/v2", doc.get("schema")
kinds = ("fp_busy", "int_busy", "mshr_stall", "spad_conflict",
         "tape_miss_stall", "cache_miss_stall", "stream_wait",
         "phase_barrier", "idle")
for variant in ("enzyme", "tapeflow"):
    s = doc[variant]["stalls"]
    assert sum(s[k] for k in kinds) == s["cycles"] * s["pes"], variant
    # v2 additions: per-inst rows (each summing exactly to its total)
    # and the provenance census.
    rows = doc[variant]["insts"]
    assert rows, f"{variant}: no inst rows"
    for r in rows:
        assert sum(r["stalls"].values()) == r["total_pe_cycles"], r
    prov = doc[variant]["provenance"]
    assert prov["insts"] > 0 and "created_by" in prov, variant
assert doc["tapeflow"]["provenance"]["created_by"].get("streams", 0) > 0
assert doc["passes"], "per-pass deltas missing"
EOF
# Flamegraph stacks: `root;region;layer;source;op count`, five frames.
python3 - target/ci/profile_sumexp.folded <<'EOF'
import sys
lines = open(sys.argv[1]).read().splitlines()
assert lines, "empty flamegraph"
roots = []
for line in lines:
    stack, count = line.rsplit(" ", 1)
    assert int(count) > 0, line
    frames = stack.split(";")
    assert len(frames) == 5, line
    if frames[0] not in roots:
        roots.append(frames[0])
assert roots == ["Enzyme", "Tapeflow"], roots
EOF
TAPEFLOW_TRACE_VALIDATE=target/ci/profile_sumexp_trace.json \
    cargo test -q --release --test profile_cli validates_trace_file_from_env
# Sampled timelines must also validate (and stay deterministic — the
# dedicated test covers that; here CI vets the emitted artifact).
cargo run --release --bin tapeflow -- \
    profile programs/sumexp.tf --wrt x --loss loss \
    --trace-out target/ci/profile_sumexp_sampled.json --sample 8 > /dev/null
TAPEFLOW_TRACE_VALIDATE=target/ci/profile_sumexp_sampled.json \
    cargo test -q --release --test profile_cli validates_trace_file_from_env

echo "== lint smoke (all registered benchmarks) =="
# Every in-tree benchmark must lint clean at the default config — any
# error-severity finding makes `tapeflow lint` exit 1 and fails CI under
# `set -e`. The machine-readable report is schema-checked like the
# profile JSON above.
for b in gravity nn logsum matdescent mttkrp somier lenet5 pathfinder mass_spring; do
    cargo run --release --bin tapeflow -- lint "$b" --scale tiny > /dev/null
done
cargo run --release --bin tapeflow -- \
    lint logsum --scale tiny --json target/ci/lint_logsum.json > /dev/null
python3 - target/ci/lint_logsum.json <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "tapeflow.cli.lint/v2", doc.get("schema")
assert doc["errors"] == 0 and doc["warnings"] == 0, doc
assert isinstance(doc["diagnostics"], list) and not doc["diagnostics"]
for key in ("program", "spad_entries", "spad_banks"):
    assert key in doc, key
ranges = doc["ranges"]
for key in ("bounded_i64", "total_i64", "bounded_f64", "total_f64"):
    assert isinstance(ranges[key], int), key
assert ranges["arrays"], "per-array content ranges missing"
EOF

echo "== dynamic range oracle (all registered benchmarks) =="
# The soundness oracle behind the value-range analysis: every benchmark
# (source and gradient function) runs under the recording interpreter
# and any observed value outside the static ranges makes `lint
# --check-dynamic` exit 1. `--compress-tape` keeps the narrowing
# decisions (and the `unsound-narrow` re-proof) in the checked path.
for b in gravity nn logsum matdescent mttkrp somier lenet5 pathfinder mass_spring; do
    cargo run --release --bin tapeflow -- \
        lint "$b" --scale tiny --compress-tape --check-dynamic \
        --json "target/ci/lint_dyn_$b.json" > /dev/null
done
python3 - target/ci/lint_dyn_*.json <<'EOF'
import json, sys
narrowing = 0
for path in sys.argv[1:]:
    doc = json.load(open(path))
    assert doc["schema"] == "tapeflow.cli.lint/v2", (path, doc.get("schema"))
    assert doc["errors"] == 0, path
    assert doc["dynamic_escapes"] == 0, path
    ranges = doc["ranges"]
    assert ranges["bounded_i64"] > 0, path
    if any(n["encoding"] == "keep" and n["width_bytes"] < 8
           for n in ranges.get("narrowing", [])):
        narrowing += 1
assert narrowing >= 3, f"width narrowing fires on only {narrowing}/9 benchmarks"
EOF

echo "== streams terminal lowering (all registered benchmarks) =="
# Pass 3 is a true terminal lowering: stopping the pipeline at `streams`
# must produce a verified stream-command program for every benchmark
# (the golden tests pin its exact text on the sample programs; this
# sweeps the whole registry). Each benchmark then lints clean — the
# lint smoke above already covers the full pipeline.
for b in gravity nn logsum matdescent mttkrp somier lenet5 pathfinder mass_spring; do
    cargo run --release --bin tapeflow -- \
        compile "$b" --scale tiny \
        --passes opt,ad,regions,layering,streams > /dev/null
done

echo "== cross-pass equivalence (split registry vs canonical pipeline) =="
# The de-fused streams/spad-index passes, assembled by name through the
# typed-artifact registry, must compile to the byte-identical program
# the canonical builder produces — with and without Pass 5. Unknown and
# dependency-violating pass lists must fail with exit 2.
for b in gravity nn logsum matdescent mttkrp somier lenet5 pathfinder mass_spring; do
    cargo run --release --bin tapeflow -- compile "$b" --scale tiny \
        > target/ci/split_default.ir
    cargo run --release --bin tapeflow -- compile "$b" --scale tiny \
        --passes opt,ad,regions,layering,streams,spad-index \
        > target/ci/split_named.ir
    diff -q target/ci/split_default.ir target/ci/split_named.ir
    cargo run --release --bin tapeflow -- compile "$b" --scale tiny --compress-tape \
        > target/ci/split_default.ir
    cargo run --release --bin tapeflow -- compile "$b" --scale tiny \
        --passes opt,ad,regions,layering,value-ranges,tape-compress,streams,spad-index \
        > target/ci/split_named.ir
    diff -q target/ci/split_default.ir target/ci/split_named.ir
done
set +e
cargo run --release --bin tapeflow -- compile logsum --scale tiny \
    --passes opt,ad,frobnicate > /dev/null 2> target/ci/passes_err.txt
rc=$?
set -e
[ "$rc" -eq 2 ] || { echo "unknown pass: expected exit 2, got $rc"; exit 1; }
grep -q 'unknown pass "frobnicate" (registered:' target/ci/passes_err.txt
set +e
cargo run --release --bin tapeflow -- compile logsum --scale tiny \
    --passes opt,ad,regions,spad-index > /dev/null 2> target/ci/passes_err.txt
rc=$?
set -e
[ "$rc" -eq 2 ] || { echo "dependency violation: expected exit 2, got $rc"; exit 1; }
grep -q 'requires `streams-ir`, produced by `streams`' target/ci/passes_err.txt
# `tape-compress` consumes the value-ranges artifact: a pass list that
# omits the analysis must be rejected, not silently un-narrowed.
set +e
cargo run --release --bin tapeflow -- compile logsum --scale tiny \
    --passes opt,ad,regions,layering,tape-compress > /dev/null 2> target/ci/passes_err.txt
rc=$?
set -e
[ "$rc" -eq 2 ] || { echo "missing value-ranges: expected exit 2, got $rc"; exit 1; }
grep -q 'requires `value-ranges`, produced by `value-ranges`' target/ci/passes_err.txt
cargo test -q --release -p tapeflow-bench --test compression

echo "== cross-engine equivalence =="
# The event-driven core vs the legacy scalar oracle: reports, stall
# attributions and Chrome traces must match byte-for-byte on all nine
# benchmarks, probes must not perturb, and the incremental-resim
# session must derive exactly what a cold run produces.
cargo test -q --release -p tapeflow-bench --test equivalence

echo "== bench-host smoke (host-throughput tracking) =="
# One pass of the host-perf sweep: the subcommand must run end to end
# and emit a schema-valid document. Throughput numbers are noisy in CI,
# so only structure and the deterministic cycle totals are asserted —
# the checked-in results/BENCH_host_perf.json records a reference run.
cargo run --release --bin tapeflow -- \
    bench-host --scale tiny --repeats 1 \
    --json target/ci/BENCH_host_perf.json > /dev/null
python3 - target/ci/BENCH_host_perf.json <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "tapeflow.bench.host_perf/v2", doc.get("schema")
host = doc["host"]
assert host["logical_cpus"] > 0 and host["rustc"] and host["jobs"] > 0, host
assert doc["ladder_bytes"] and doc["ladder_bytes"] == sorted(doc["ladder_bytes"], reverse=True)
assert len(doc["benchmarks"]) == 9, len(doc["benchmarks"])
for b in doc["benchmarks"]:
    for sweep in ("cache_ladder", "mixed_sweep"):
        s = b[sweep]
        assert s["configs"] > 0 and s["sim_cycles"] > 0, (b["name"], sweep)
        assert 0 < s["trace_groups"] <= s["configs"], (b["name"], sweep)
        for eng in ("event", "legacy"):
            e = s["engines"][eng]
            assert e["seconds"] > 0 and e["sim_cycles_per_sec"] > 0, (b["name"], sweep, eng)
        assert s["speedup"] > 0, (b["name"], sweep)
    assert b["cache_ladder"]["configs"] == len(doc["ladder_bytes"])
    assert b["cache_ladder"]["trace_groups"] == 1, b["name"]
    assert b["mixed_sweep"]["trace_groups"] > 1, b["name"]
assert doc["geomean_ladder_speedup"] > 0 and doc["geomean_mixed_speedup"] > 0
EOF
# The checked-in reference records a real run's throughput; its
# deterministic skeleton (schema, configs, trace groups, cycle totals)
# must match what this tree produces. Compare both sides wall-scrubbed:
# the fresh run via --stable-json, the reference via the same scrub
# applied in flight.
cargo run --release --bin tapeflow -- \
    bench-host --scale tiny --repeats 1 --stable-json \
    --json target/ci/BENCH_host_perf_stable.json > /dev/null
python3 - results/BENCH_host_perf.json target/ci/BENCH_host_perf_stable.json <<'EOF'
import json, sys
ref, fresh = (json.load(open(p)) for p in sys.argv[1:3])
ref["host"] = {"logical_cpus": 0, "rustc": "", "opt_level": "", "jobs": 0}
for b in ref["benchmarks"]:
    for sweep in ("cache_ladder", "mixed_sweep"):
        s = b[sweep]
        s["speedup"] = 0.0
        for e in s["engines"].values():
            e["seconds"] = 0.0
            e["sim_cycles_per_sec"] = 0.0
ref["geomean_ladder_speedup"] = ref["geomean_mixed_speedup"] = 0.0
assert ref == fresh, "results/BENCH_host_perf.json skeleton drifted; re-bless with: " \
    "cargo run --release --bin tapeflow -- bench-host --scale tiny --repeats 15 " \
    "--json results/BENCH_host_perf.json"
EOF
# The subset/parallel/stable path: a two-benchmark run on two workers
# must produce a byte-reproducible document under --stable-json (wall
# and host fields zeroed, deterministic structure identical run to run).
cargo run --release --bin tapeflow -- \
    bench-host --scale tiny --repeats 1 --benchmarks gravity,logsum --jobs 2 \
    --stable-json --json target/ci/BENCH_host_perf_stable_a.json > /dev/null
cargo run --release --bin tapeflow -- \
    bench-host --scale tiny --repeats 1 --benchmarks gravity,logsum --jobs 2 \
    --stable-json --json target/ci/BENCH_host_perf_stable_b.json > /dev/null
diff -q target/ci/BENCH_host_perf_stable_a.json target/ci/BENCH_host_perf_stable_b.json

echo "== experiments regression (tiny scale, stable JSON) =="
# Regenerate the machine-readable results at tiny scale with every
# wall-clock field zeroed and diff against the checked-in reference —
# stall breakdowns, provenance-resolved hot spots and the host-perf
# fold included (the scrub leaves only deterministic structure and
# cycle counters, so the document is byte-stable by construction).
# Catches perf-model / accounting drift that unit tests miss.
cargo run --release -p tapeflow-bench --bin experiments -- \
    all --scale tiny --jobs 2 --stable-json --stall-breakdown --hot-spots \
    --host-perf --json target/ci/BENCH_experiments_tiny.json > /dev/null
if ! diff -u results/BENCH_experiments_tiny.json \
        target/ci/BENCH_experiments_tiny.json > target/ci/experiments.diff; then
    echo "experiments output drifted from results/BENCH_experiments_tiny.json:"
    head -n 60 target/ci/experiments.diff
    echo "(full diff: target/ci/experiments.diff; if the change is intended," \
         "bless it with: cp target/ci/BENCH_experiments_tiny.json" \
         "results/BENCH_experiments_tiny.json)"
    exit 1
fi

echo "CI green."
