#!/usr/bin/env bash
# Repo CI: formatting, lints, and the tier-1 verify (ROADMAP.md).
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (workspace, -D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1 verify =="
cargo build --release
cargo test -q

echo "== workspace tests =="
cargo test --workspace -q

echo "CI green."
